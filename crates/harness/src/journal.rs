//! Machine-readable run journal: framed, checksummed records (v2), one per
//! line, readable back tolerantly — including v1 journals from older runs.
//!
//! ## Record format
//!
//! **v2** (written by this version) frames each JSON payload so torn or
//! bit-rotted records are *detected*, not guessed at:
//!
//! ```text
//! v2|<len>|<fnv16>|<payload-json>\n
//! ```
//!
//! `len` is the payload's byte length in decimal; `fnv16` is the
//! 16-hex-digit FNV-1a-64 of the payload bytes. A record whose length or
//! checksum does not match is corrupt (typically the torn tail a SIGKILL
//! mid-append leaves) and is skipped with a warning. **v1** records — bare
//! JSON lines written before the framing existed — are still parsed, so
//! old journals replay.
//!
//! ## Events
//!
//! Every record carries `"event"`, `"ts_ms"` (Unix epoch milliseconds) and
//! `"epoch"` — the run epoch, i.e. 1 + the number of `run_start` records
//! already in the journal when this writer opened it. Recovery uses the
//! `job_start` / `job_done` pairing to distinguish three job states:
//!
//! | state | evidence | recovery action |
//! |---|---|---|
//! | never started | no events for the id | run it |
//! | started, died | `job_start` without a later `job_done` | distrust any cache entry; re-run |
//! | committed | `job_done` with `"ok":true,"cached":true` | serve from cache, never re-execute |
//!
//! | event | fields |
//! |---|---|
//! | `run_start` | `run`, `scale`, `workers`, `jobs` |
//! | `job_start` | `id`, `kind`, `worker`, `attempt` |
//! | `job_done` | `id`, `kind`, `worker`, `cache_hit`, `cached`, `ok`, `secs`, `error?` |
//! | `job_timeout` | `id`, `attempt`, `limit_secs` |
//! | `job_retry` | `id`, `attempt`, `delay_ms` |
//! | `job_recovered` | `id` (an interrupted job whose cache entry was distrusted) |
//! | `artefact` | `path`, `bytes`, `fnv` |
//! | `stage` | `label`, `secs` |
//! | `run_end` | `run`, `secs`, `ok`, `failed`, `cache_hits` |
//!
//! The file is append-only across runs (a resumed campaign keeps its
//! history). Appends are serialised through a mutex and each record lands
//! with a single durable `O_APPEND` write via [`crate::fs::commit_append`],
//! so concurrent workers never interleave partial lines and a crash tears
//! at most the final record.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::fs::{commit_append, std_fs, Fs};
use crate::hash::fnv1a64;
use crate::json::Value;

/// Append-only journal, safe to share across worker threads.
pub struct Journal {
    sink: Mutex<Sink>,
    epoch: i64,
}

enum Sink {
    Disabled,
    File { fs: Arc<dyn Fs>, path: PathBuf },
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (appending) the journal at `path`, creating parent directories
    /// as needed, on the production filesystem.
    pub fn open(path: &Path) -> io::Result<Journal> {
        Journal::open_with_fs(path, std_fs())
    }

    /// Opens the journal on an explicit [`Fs`] (fault-injection tests).
    ///
    /// The new writer's run epoch is computed from the readable prefix of
    /// the existing file: 1 + the number of `run_start` records.
    pub fn open_with_fs(path: &Path, fs: Arc<dyn Fs>) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs.create_dir_all(parent)?;
            }
        }
        let epoch = 1 + Journal::read_events(path)?
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("run_start"))
            .count() as i64;
        // Touch the file so an opened journal exists even before the first
        // record (resume logic can then rely on the file's presence).
        commit_append(fs.as_ref(), path, b"")?;
        Ok(Journal {
            sink: Mutex::new(Sink::File {
                fs,
                path: path.to_path_buf(),
            }),
            epoch,
        })
    }

    /// A journal that discards everything (for tests and `--no-journal`
    /// contexts).
    #[must_use]
    pub fn disabled() -> Journal {
        Journal {
            sink: Mutex::new(Sink::Disabled),
            epoch: 1,
        }
    }

    /// The run epoch this writer stamps on every record.
    #[must_use]
    pub fn epoch(&self) -> i64 {
        self.epoch
    }

    /// Appends one event line with the given payload fields.
    pub fn record(&self, event: &str, fields: Vec<(&str, Value)>) {
        let mut pairs = vec![
            ("event", Value::Str(event.to_string())),
            ("ts_ms", Value::Int(now_ms())),
            ("epoch", Value::Int(self.epoch)),
        ];
        pairs.extend(fields);
        let payload = Value::obj(pairs).render();
        let line = frame_v2(&payload);
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Sink::File { fs, path } = &*sink {
            // Journal I/O failures must not abort a campaign; drop the line
            // (recovery treats a missing job_done as "re-run", never worse).
            let _ = commit_append(fs.as_ref(), path, line.as_bytes());
        }
    }

    /// Records that a worker is about to *execute* a job (not a cache hit).
    /// A `job_start` without a later `job_done` marks an interrupted job.
    pub fn job_start(&self, id: &str, kind: &str, worker: usize, attempt: u32) {
        self.record(
            "job_start",
            vec![
                ("id", Value::Str(id.to_string())),
                ("kind", Value::Str(kind.to_string())),
                ("worker", Value::Int(worker as i64)),
                ("attempt", Value::Int(i64::from(attempt))),
            ],
        );
    }

    /// Records the completion of one job. `cached` reports whether the
    /// result is durably in the cache (a hit, or a successful commit) —
    /// the predicate recovery uses to promise the job never re-executes.
    #[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
    pub fn job_done(
        &self,
        id: &str,
        kind: &str,
        worker: usize,
        cache_hit: bool,
        cached: bool,
        ok: bool,
        secs: f64,
        error: Option<&str>,
    ) {
        let mut fields = vec![
            ("id", Value::Str(id.to_string())),
            ("kind", Value::Str(kind.to_string())),
            ("worker", Value::Int(worker as i64)),
            ("cache_hit", Value::Bool(cache_hit)),
            ("cached", Value::Bool(cached)),
            ("ok", Value::Bool(ok)),
            ("secs", Value::Num(secs)),
        ];
        if let Some(e) = error {
            fields.push(("error", Value::Str(e.to_string())));
        }
        self.record("job_done", fields);
    }

    /// Records a named pipeline stage's wall time (used by
    /// `htpb_bench::timed_stage`).
    pub fn stage(&self, label: &str, secs: f64) {
        self.record(
            "stage",
            vec![
                ("label", Value::Str(label.to_string())),
                ("secs", Value::Num(secs)),
            ],
        );
    }

    /// Records a committed artefact's size and FNV-1a-64 digest.
    /// `repro_all --verify` replays these against the files on disk.
    pub fn artefact(&self, name: &str, bytes: &[u8]) {
        self.record(
            "artefact",
            vec![
                ("path", Value::Str(name.to_string())),
                ("bytes", Value::Int(bytes.len() as i64)),
                ("fnv", Value::Str(format!("{:016x}", fnv1a64(bytes)))),
            ],
        );
    }

    /// Parses one journal line: a framed v2 record (length and checksum
    /// verified) or a bare v1 JSON line. `None` for corrupt lines.
    #[must_use]
    pub fn parse_line(line: &str) -> Option<Value> {
        if let Some(rest) = line.strip_prefix("v2|") {
            let (len, rest) = rest.split_once('|')?;
            let (check, payload) = rest.split_once('|')?;
            let len: usize = len.parse().ok()?;
            if payload.len() != len {
                return None;
            }
            let digest = format!("{:016x}", fnv1a64(payload.as_bytes()));
            if digest != check {
                return None;
            }
            crate::json::parse(payload).ok()
        } else {
            crate::json::parse(line).ok()
        }
    }

    /// Reads a journal file back as parsed events, in order. A missing
    /// file is an empty journal. Corrupt records — a torn trailing line
    /// left by a killed writer, or a v2 frame whose checksum fails — are
    /// skipped with a warning rather than failing the resume.
    pub fn read_events(path: &Path) -> io::Result<Vec<Value>> {
        Journal::read_events_stats(path).map(|(events, _)| events)
    }

    /// Like [`Journal::read_events`], also returning how many corrupt
    /// lines were skipped (the chaos harness bounds this by the number of
    /// kills a journal survived).
    pub fn read_events_stats(path: &Path) -> io::Result<(Vec<Value>, usize)> {
        let bytes = match std_fs().read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut events = Vec::new();
        let mut corrupt = 0;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Journal::parse_line(line) {
                Some(v) => events.push(v),
                None => {
                    corrupt += 1;
                    eprintln!(
                        "[harness] warning: skipping corrupt journal line {} in {}",
                        lineno + 1,
                        path.display()
                    );
                }
            }
        }
        Ok((events, corrupt))
    }

    /// The ids of jobs a prior (possibly interrupted) run already
    /// completed successfully, according to its journal. Accepts both the
    /// v2 `job_done` event and the v1 `job` event. Tolerates corrupt lines
    /// like [`Journal::read_events`].
    pub fn completed_job_ids(path: &Path) -> io::Result<Vec<String>> {
        let events = Journal::read_events(path)?;
        Ok(completed_in(&events))
    }

    /// The ids of jobs some run *started but never finished*: a
    /// `job_start` with no later `job_done` for the same id. These jobs
    /// died mid-execution — recovery must distrust any state they left
    /// (cache entries included) and re-run them.
    pub fn interrupted_job_ids(path: &Path) -> io::Result<Vec<String>> {
        let events = Journal::read_events(path)?;
        Ok(interrupted_in(&events))
    }

    /// Per-kind execution tallies aggregated from every `job_done` record
    /// across **all** epochs of the journal: `(kind, jobs, executed,
    /// secs)`, sorted by kind. `executed` excludes cache hits, and `secs`
    /// sums the recorded wall times — the per-stage timing detail a
    /// resumed campaign would otherwise lose (its own epoch sees only
    /// cache hits).
    pub fn stage_tallies(path: &Path) -> io::Result<Vec<StageTally>> {
        let events = Journal::read_events(path)?;
        Ok(stage_tallies_in(&events))
    }

    /// The most recent recorded digest per artefact path: `(path, bytes,
    /// fnv16)` — what `--verify` checks the files on disk against.
    pub fn artefact_digests(path: &Path) -> io::Result<Vec<(String, i64, String)>> {
        let events = Journal::read_events(path)?;
        let mut digests: Vec<(String, i64, String)> = Vec::new();
        for e in &events {
            if e.get("event").and_then(Value::as_str) != Some("artefact") {
                continue;
            }
            let (Some(name), Some(bytes), Some(fnv)) = (
                e.get("path").and_then(Value::as_str),
                e.get("bytes").and_then(Value::as_i64),
                e.get("fnv").and_then(Value::as_str),
            ) else {
                continue;
            };
            if let Some(existing) = digests.iter_mut().find(|(p, _, _)| p == name) {
                *existing = (name.to_string(), bytes, fnv.to_string());
            } else {
                digests.push((name.to_string(), bytes, fnv.to_string()));
            }
        }
        Ok(digests)
    }
}

/// [`Journal::interrupted_job_ids`] over already-parsed events: ids with a
/// `job_start` but no later `job_done`.
#[must_use]
pub fn interrupted_in(events: &[Value]) -> Vec<String> {
    let mut open: Vec<String> = Vec::new();
    for e in events {
        let Some(id) = e.get("id").and_then(Value::as_str) else {
            continue;
        };
        match e.get("event").and_then(Value::as_str) {
            Some("job_start") if !open.iter().any(|o| o == id) => {
                open.push(id.to_string());
            }
            Some("job_done" | "job") => open.retain(|o| o != id),
            _ => {}
        }
    }
    open
}

/// Aggregated `job_done` history for one job kind (`fig3`, `sweep`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTally {
    /// The job kind ([`crate::JobSpec::kind`]).
    pub kind: String,
    /// `job_done` records seen for this kind (cache hits included).
    pub jobs: u64,
    /// Completions that actually executed (`"cache_hit":false`).
    pub executed: u64,
    /// Sum of the recorded per-job wall times, in seconds.
    pub secs: f64,
}

/// [`Journal::stage_tallies`] over already-parsed events. Accepts both the
/// v2 `job_done` event and the v1 `job` event; records without a `kind`
/// field are skipped.
#[must_use]
pub fn stage_tallies_in(events: &[Value]) -> Vec<StageTally> {
    let mut tallies: Vec<StageTally> = Vec::new();
    for e in events {
        if !matches!(
            e.get("event").and_then(Value::as_str),
            Some("job" | "job_done")
        ) {
            continue;
        }
        let Some(kind) = e.get("kind").and_then(Value::as_str) else {
            continue;
        };
        let secs = e.get("secs").and_then(Value::as_f64).unwrap_or(0.0);
        let hit = e.get("cache_hit") == Some(&Value::Bool(true));
        let t = match tallies.iter_mut().find(|t| t.kind == kind) {
            Some(t) => t,
            None => {
                tallies.push(StageTally {
                    kind: kind.to_string(),
                    jobs: 0,
                    executed: 0,
                    secs: 0.0,
                });
                tallies.last_mut().expect("just pushed")
            }
        };
        t.jobs += 1;
        if !hit {
            t.executed += 1;
        }
        t.secs += secs;
    }
    tallies.sort_by(|a, b| a.kind.cmp(&b.kind));
    tallies
}

/// Completed job ids from already-parsed events (v1 `job` or v2
/// `job_done`, `"ok":true`).
#[must_use]
pub fn completed_in(events: &[Value]) -> Vec<String> {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.get("event").and_then(Value::as_str),
                Some("job" | "job_done")
            )
        })
        .filter(|e| e.get("ok") == Some(&Value::Bool(true)))
        .filter_map(|e| e.get("id")?.as_str().map(ToString::to_string))
        .collect()
}

/// Frames a payload as a v2 record line.
fn frame_v2(payload: &str) -> String {
    format!(
        "v2|{}|{:016x}|{payload}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
}

fn now_ms() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpfile(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("htpb-journal-{tag}-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn journal_lines_are_framed_and_parse_back() {
        let path = tmpfile("frame");
        let j = Journal::open(&path).unwrap();
        j.job_done(
            "fig3-n64-center-ht5-s0",
            "fig3",
            2,
            false,
            true,
            true,
            0.25,
            None,
        );
        j.stage("assemble", 0.01);
        j.record("run_end", vec![("ok", Value::Bool(true))]);
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("v2|"), "v2 framing expected: {line}");
            let v = Journal::parse_line(line).expect("valid framed record");
            assert!(v.get("event").is_some());
            assert!(v.get("ts_ms").is_some());
            assert_eq!(v.get("epoch"), Some(&Value::Int(1)));
        }
        assert_eq!(
            Journal::parse_line(lines[0]).unwrap().get("worker"),
            Some(&Value::Int(2))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn disabled_journal_is_a_no_op() {
        Journal::disabled().stage("x", 1.0);
    }

    #[test]
    fn epoch_counts_run_starts_across_reopens() {
        let path = tmpfile("epoch");
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.epoch(), 1);
            j.record("run_start", vec![("run", Value::Str("x".into()))]);
            j.record("run_end", vec![]);
        }
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.epoch(), 2, "second run is epoch 2");
            j.record("run_start", vec![("run", Value::Str("x".into()))]);
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.epoch(), 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn read_back_tolerates_a_truncated_trailing_line() {
        let path = tmpfile("trunc");
        let j = Journal::open(&path).unwrap();
        j.job_done("fig3-a", "fig3", 0, false, true, true, 0.1, None);
        j.job_done("fig3-b", "fig3", 0, false, false, false, 0.1, Some("boom"));
        drop(j);
        // Simulate a writer killed mid-line: append half a framed record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("v2|64|0123456789abcdef|{\"event\":\"job_done\",\"id\":\"fig3-c\",\"ok\":tr");
        fs::write(&path, text).unwrap();

        let (events, corrupt) = Journal::read_events_stats(&path).unwrap();
        assert_eq!(events.len(), 2, "the corrupt tail is skipped, not fatal");
        assert_eq!(corrupt, 1);
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string()],
            "only ok jobs count as completed"
        );
        let _ = fs::remove_file(&path);
    }

    /// A checksum mismatch (bit rot, not just truncation) is also caught —
    /// the v1 format would have parsed a bit-flipped-but-valid-JSON line.
    #[test]
    fn checksum_mismatch_is_detected() {
        let path = tmpfile("bitrot");
        let j = Journal::open(&path).unwrap();
        j.job_done("fig3-a", "fig3", 0, false, true, true, 0.1, None);
        drop(j);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\":true"));
        // Flip payload bytes without touching the frame.
        fs::write(&path, text.replace("\"ok\":true", "\"ok\":tttt")).unwrap();
        let (events, corrupt) = Journal::read_events_stats(&path).unwrap();
        assert!(events.is_empty(), "doctored record must not parse");
        assert_eq!(corrupt, 1);
        let _ = fs::remove_file(&path);
    }

    /// Chosen behaviour for corruption *inside* the file (not just a
    /// truncated tail): the bad line is skipped with a warning and every
    /// valid line after it still parses. A resumed campaign therefore keeps
    /// all completions it can still read — it never discards the journal
    /// suffix behind a torn write, and never fails the resume.
    #[test]
    fn read_back_tolerates_a_corrupt_line_mid_file() {
        let path = tmpfile("midfile");
        let j = Journal::open(&path).unwrap();
        j.job_done("fig3-a", "fig3", 0, false, true, true, 0.1, None);
        drop(j);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("v2|12|deadbeefdeadbeef|{\"event\":\u{0}garbage\n");
        fs::write(&path, text).unwrap();
        let j = Journal::open(&path).unwrap();
        j.job_done("fig3-b", "fig3", 0, false, true, true, 0.1, None);
        j.job_done("fig3-c", "fig3", 0, false, false, false, 0.1, Some("boom"));
        drop(j);

        let events = Journal::read_events(&path).unwrap();
        assert_eq!(events.len(), 3, "valid lines on both sides are kept");
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string(), "fig3-b".to_string()],
            "completions after the corrupt line are not lost"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn v1_journals_still_replay() {
        let path = tmpfile("v1");
        // Exactly what the pre-framing Journal wrote: bare JSON lines with
        // `job` completion events and no epoch field.
        fs::write(
            &path,
            concat!(
                "{\"event\":\"run_start\",\"ts_ms\":1,\"run\":\"repro_all\",\"jobs\":2}\n",
                "{\"event\":\"job\",\"ts_ms\":2,\"id\":\"fig3-a\",\"kind\":\"fig3\",\
                 \"worker\":0,\"cache_hit\":false,\"ok\":true,\"secs\":0.1}\n",
                "{\"event\":\"job\",\"ts_ms\":3,\"id\":\"fig3-b\",\"kind\":\"fig3\",\
                 \"worker\":0,\"cache_hit\":false,\"ok\":false,\"secs\":0.1,\
                 \"error\":\"boom\"}\n",
                "{\"event\":\"run_end\",\"ts_ms\":4,\"ok\":false}\n",
            ),
        )
        .unwrap();
        let events = Journal::read_events(&path).unwrap();
        assert_eq!(events.len(), 4, "every v1 line parses");
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string()],
            "v1 `job` events count as completions"
        );
        assert!(
            Journal::interrupted_job_ids(&path).unwrap().is_empty(),
            "v1 journals have no job_start, so nothing reads as interrupted"
        );
        // A v2 writer appends to the same file and the mix reads back.
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.epoch(), 2, "the v1 run counts toward the epoch");
        j.job_done("fig3-b", "fig3", 0, false, true, true, 0.1, None);
        drop(j);
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string(), "fig3-b".to_string()]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn interrupted_jobs_are_starts_without_dones() {
        let path = tmpfile("interrupted");
        let j = Journal::open(&path).unwrap();
        j.job_start("job-a", "fig3", 0, 1);
        j.job_done("job-a", "fig3", 0, false, true, true, 0.1, None);
        j.job_start("job-b", "fig3", 1, 1);
        j.job_start("job-c", "fig3", 0, 1);
        drop(j); // killed here: b and c never finished
        assert_eq!(
            Journal::interrupted_job_ids(&path).unwrap(),
            vec!["job-b".to_string(), "job-c".to_string()]
        );
        // The resumed epoch re-runs b; c stays interrupted until done.
        let j = Journal::open(&path).unwrap();
        j.job_start("job-b", "fig3", 0, 1);
        j.job_done("job-b", "fig3", 0, false, true, true, 0.1, None);
        drop(j);
        assert_eq!(
            Journal::interrupted_job_ids(&path).unwrap(),
            vec!["job-c".to_string()]
        );
        let _ = fs::remove_file(&path);
    }

    /// Satellite fix for `repro_all --resume`: a resumed epoch's own
    /// reports are all near-zero cache hits, so the per-stage timing
    /// detail must be recoverable from the prior epochs' `job_done`
    /// records.
    #[test]
    fn stage_tallies_recover_timing_detail_across_epochs() {
        let path = tmpfile("tallies");
        {
            // Epoch 1: two fig3 points and a sweep point execute for real,
            // then the process dies before the campaign finishes.
            let j = Journal::open(&path).unwrap();
            j.record("run_start", vec![("run", Value::Str("repro_all".into()))]);
            j.job_done("fig3-a", "fig3", 0, false, true, true, 1.5, None);
            j.job_done("fig3-b", "fig3", 1, false, true, true, 2.5, None);
            j.job_done("sweep-a", "sweep", 0, false, true, true, 4.0, None);
        }
        {
            // Epoch 2 (--resume): the finished points come back as cache
            // hits with ~zero wall time; one new point executes.
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.epoch(), 2, "fixture really spans two epochs");
            j.record("run_start", vec![("run", Value::Str("repro_all".into()))]);
            j.job_done("fig3-a", "fig3", 0, true, true, true, 0.0, None);
            j.job_done("fig3-b", "fig3", 0, true, true, true, 0.0, None);
            j.job_done("fig3-c", "fig3", 0, false, true, true, 3.0, None);
        }
        let tallies = Journal::stage_tallies(&path).unwrap();
        assert_eq!(tallies.len(), 2, "{tallies:?}");
        assert_eq!(tallies[0].kind, "fig3");
        assert_eq!(tallies[0].jobs, 5, "hits and executions both count");
        assert_eq!(tallies[0].executed, 3, "cache hits are not executions");
        assert!((tallies[0].secs - 7.0).abs() < 1e-9, "{tallies:?}");
        assert_eq!(tallies[1].kind, "sweep");
        assert_eq!((tallies[1].jobs, tallies[1].executed), (1, 1));
        assert!((tallies[1].secs - 4.0).abs() < 1e-9);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn artefact_digests_keep_the_latest_record_per_path() {
        let path = tmpfile("artefact");
        let j = Journal::open(&path).unwrap();
        j.artefact("fig3_64.tsv", b"old bytes");
        j.artefact("SUMMARY.txt", b"summary");
        j.artefact("fig3_64.tsv", b"new bytes!");
        drop(j);
        let digests = Journal::artefact_digests(&path).unwrap();
        assert_eq!(digests.len(), 2);
        let fig3 = digests.iter().find(|(p, _, _)| p == "fig3_64.tsv").unwrap();
        assert_eq!(fig3.1, 10);
        assert_eq!(fig3.2, format!("{:016x}", fnv1a64(b"new bytes!")));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn read_back_of_missing_journal_is_empty() {
        let path = std::env::temp_dir().join("htpb-journal-does-not-exist.jsonl");
        assert!(Journal::read_events(&path).unwrap().is_empty());
    }
}
