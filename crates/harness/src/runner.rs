//! Fixed-size worker pool executing [`JobSpec`]s.
//!
//! Scheduling is a shared atomic work index over an immutable job slice:
//! workers claim the next unclaimed job, execute it (or serve it from the
//! cache) and write the report into that job's slot. Results are returned
//! **in job order**, regardless of which worker finished when — combined
//! with per-job determinism this makes parallel campaigns byte-identical
//! to sequential ones.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! scenario records a failure and the rest of the campaign continues.
//!
//! With [`RunOptions::job_timeout`] set, each job additionally runs on a
//! detached thread bounded by a wall-clock limit: a hung scenario times
//! out (leaking its thread rather than wedging the pool), is retried up to
//! [`RunOptions::retries`] times, and finally records a failure. Retries
//! back off exponentially with a deterministic, seed-derived jitter
//! (`FNV(seed, job id, attempt)`), so retry timing is reproducible from
//! the journal alone. Timeouts and retries land in the journal as
//! `job_timeout` / `job_retry` events (the latter carries the computed
//! `delay_ms`).
//!
//! ## Crash-safety contract
//!
//! Every *executed* attempt is bracketed by journal `job_start` /
//! `job_done` records (cache hits skip `job_start` — nothing ran). The
//! cache store happens **before** `job_done`, so by the time a completion
//! is journalled the result is durable; a crash between the two re-runs
//! the job (`job_start` without `job_done`), which is safe because
//! recovery also distrusts its cache entry. `job_done` carries
//! `"cached":true` only when the result is durably in the cache — the
//! predicate under which a resumed campaign promises never to re-execute
//! the job.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::baseline::BaselineCache;
use crate::cache::ResultCache;
use crate::hash::fnv1a64_parts;
use crate::job::{JobOutput, JobSpec};
use crate::journal::Journal;
use crate::json::Value;

/// Pool configuration.
#[derive(Debug)]
pub struct RunOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Result cache; `None` disables caching entirely (`--no-cache`).
    pub cache: Option<ResultCache>,
    /// Clean-baseline memoization shared by all workers; `None` computes
    /// baselines inline per job (bit-identical, just slower).
    pub baselines: Option<Arc<BaselineCache>>,
    /// Emit a progress/ETA line on stderr while running.
    pub progress: bool,
    /// Per-job wall-clock limit; `None` (the default) lets jobs run
    /// unbounded on the worker thread itself.
    pub job_timeout: Option<Duration>,
    /// How many times a timed-out or failed job is retried before it is
    /// recorded as failed (`--retries`, default 1).
    pub retries: u32,
    /// Seed folded into the deterministic retry-backoff jitter.
    pub retry_seed: u64,
    /// Base backoff unit in milliseconds: retry `n` sleeps
    /// `base * 2^(n-1) + FNV(seed, id, n) % base`. `0` disables backoff
    /// (immediate re-queue, the pre-backoff behaviour).
    pub retry_base_ms: u64,
}

impl RunOptions {
    /// Sequential, uncached, quiet — the baseline configuration tests use.
    #[must_use]
    pub fn sequential() -> RunOptions {
        RunOptions {
            workers: 1,
            cache: None,
            baselines: None,
            progress: false,
            job_timeout: None,
            retries: 1,
            retry_seed: 0,
            retry_base_ms: 25,
        }
    }

    /// The number of workers `--jobs 0` / no flag resolves to: one per
    /// available core.
    #[must_use]
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// The deterministic backoff delay before retry `attempt` (1-based) of
/// `job_id`: exponential in the attempt with an FNV-derived jitter, so two
/// workers retrying the same moment spread out, yet the schedule is fully
/// reproducible from (seed, id, attempt).
#[must_use]
pub fn retry_delay_ms(seed: u64, job_id: &str, attempt: u32, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let shift = (attempt.saturating_sub(1)).min(10);
    let jitter = fnv1a64_parts(&[&seed.to_string(), job_id, &attempt.to_string()]) % base_ms;
    base_ms.saturating_mul(1 << shift).saturating_add(jitter)
}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobReport {
    /// The executed spec.
    pub spec: JobSpec,
    /// The result, or the panic message if the job's scenario panicked.
    pub output: Result<JobOutput, String>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Baseline-cache use: `None` for jobs without a shared clean baseline
    /// (or when no [`BaselineCache`] was configured, or on a result-cache
    /// hit), otherwise whether the baseline was served from the cache.
    pub baseline: Option<bool>,
    /// Wall time of this job (near zero for cache hits).
    pub secs: f64,
    /// Index of the worker that ran the job.
    pub worker: usize,
}

impl JobReport {
    /// The output, panicking with the job id on a failed job. Campaign
    /// assembly uses this for artefacts that cannot tolerate holes.
    #[must_use]
    pub fn expect_output(&self) -> &JobOutput {
        match &self.output {
            Ok(out) => out,
            Err(e) => panic!("job {} failed: {e}", self.spec.id()),
        }
    }
}

/// One attempt's result, private to the retry loop.
struct Attempt {
    output: Result<JobOutput, String>,
    cache_hit: bool,
    baseline: Option<bool>,
    timed_out: bool,
    /// The result is durably committed to the result cache (a hit, or a
    /// successful store).
    cached: bool,
}

/// Executes `jobs` on the pool and returns one report per job, in job
/// order. Journal entries are appended as jobs complete (completion
/// order); pass [`Journal::disabled`] to skip journalling.
pub fn run_jobs(jobs: &[JobSpec], opts: &RunOptions, journal: &Journal) -> Vec<JobReport> {
    let total = jobs.len();
    let workers = opts.workers.max(1).min(total.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let started = Instant::now();
    let metrics = htpb_obs::enabled().then(crate::obs::harness_metrics);
    if let Some(m) = metrics {
        m.queue_depth.set(total as i64);
    }

    thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let done = &done;
            let hits = &hits;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let spec = &jobs[i];
                let t0 = Instant::now();
                let attempt = execute_with_retries(spec, opts, journal, worker);
                let secs = t0.elapsed().as_secs_f64();
                journal.job_done(
                    &spec.id(),
                    spec.kind(),
                    worker,
                    attempt.cache_hit,
                    attempt.cached,
                    attempt.output.is_ok(),
                    secs,
                    attempt.output.as_ref().err().map(String::as_str),
                );
                if let Some(hit) = attempt.baseline {
                    journal.record(
                        if hit { "baseline_hit" } else { "baseline_miss" },
                        vec![("id", Value::Str(spec.id()))],
                    );
                }
                if let Some(m) = metrics {
                    m.jobs_total.inc();
                    m.job_ms.observe((secs * 1000.0) as u64);
                    if attempt.cache_hit {
                        m.cache_hits_total.inc();
                    } else {
                        m.cache_misses_total.inc();
                    }
                    match attempt.baseline {
                        Some(true) => m.baseline_hits_total.inc(),
                        Some(false) => m.baseline_misses_total.inc(),
                        None => {}
                    }
                    if attempt.output.is_err() {
                        m.failures_total.inc();
                    }
                    m.queue_depth.add(-1);
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(JobReport {
                    spec: spec.clone(),
                    output: attempt.output,
                    cache_hit: attempt.cache_hit,
                    baseline: attempt.baseline,
                    secs,
                    worker,
                });
                if attempt.cache_hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if opts.progress {
                    print_progress(finished, total, hits.load(Ordering::Relaxed), &started);
                }
            });
        }
    });

    if opts.progress && total > 0 {
        eprintln!();
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed job writes its slot")
        })
        .collect()
}

/// Runs one job under the pool's timeout/retry policy. A timed-out attempt
/// is journalled (`job_timeout`) and retried (`job_retry`) until the retry
/// budget runs out; a failed (panicking) attempt is likewise retried — a
/// crashed worker machine and a hung one are the same event to a campaign.
/// Each retry sleeps the deterministic [`retry_delay_ms`] first. The final
/// attempt's outcome is returned. Cache hits are never retried (they are
/// `Ok` by construction).
fn execute_with_retries(
    spec: &JobSpec,
    opts: &RunOptions,
    journal: &Journal,
    worker: usize,
) -> Attempt {
    let mut retry: u32 = 0;
    let metrics = htpb_obs::enabled().then(crate::obs::harness_metrics);
    loop {
        let attempt = execute_one(spec, opts, journal, worker, retry + 1);
        if attempt.timed_out {
            if let Some(m) = metrics {
                m.timeouts_total.inc();
            }
            journal.record(
                "job_timeout",
                vec![
                    ("id", Value::Str(spec.id())),
                    ("attempt", Value::Int(i64::from(retry) + 1)),
                    (
                        "limit_secs",
                        Value::Num(opts.job_timeout.map_or(0.0, |d| d.as_secs_f64())),
                    ),
                ],
            );
        }
        let retryable = attempt.timed_out || (!attempt.cache_hit && attempt.output.is_err());
        if retryable && retry < opts.retries {
            retry += 1;
            if let Some(m) = metrics {
                m.retries_total.inc();
            }
            let delay_ms = retry_delay_ms(opts.retry_seed, &spec.id(), retry, opts.retry_base_ms);
            journal.record(
                "job_retry",
                vec![
                    ("id", Value::Str(spec.id())),
                    ("attempt", Value::Int(i64::from(retry) + 1)),
                    ("delay_ms", Value::Int(delay_ms as i64)),
                ],
            );
            if delay_ms > 0 {
                thread::sleep(Duration::from_millis(delay_ms));
            }
            continue;
        }
        return attempt;
    }
}

/// Runs one attempt. An *executed* attempt (anything past the cache
/// check) is announced with a journal `job_start` first, so a crash
/// mid-execution leaves the start/done pair visibly unbalanced.
fn execute_one(
    spec: &JobSpec,
    opts: &RunOptions,
    journal: &Journal,
    worker: usize,
    attempt: u32,
) -> Attempt {
    let cache = opts.cache.as_ref();
    let baselines = opts.baselines.as_ref();
    if let Some(cache) = cache {
        if let Some(output) = cache.load(spec) {
            // A result-cache hit never touches the baseline layer, and
            // never re-executes: no job_start.
            return Attempt {
                output: Ok(output),
                cache_hit: true,
                baseline: None,
                timed_out: false,
                cached: true,
            };
        }
    }
    journal.job_start(&spec.id(), spec.kind(), worker, attempt);
    let result = match opts.job_timeout {
        None => panic::catch_unwind(AssertUnwindSafe(|| {
            spec.execute_with(baselines.map(Arc::as_ref))
        }))
        .map_err(|payload| panic_message(payload.as_ref())),
        Some(limit) => {
            // The job runs on a detached thread so a hung scenario cannot
            // wedge the worker: on timeout the thread is leaked (it parks
            // on a disconnected channel when it eventually finishes) and
            // the pool moves on. The limit is a hard wall-clock budget:
            // a result that arrives late (the scheduler can run the job
            // to completion before this thread ever blocks on the
            // channel) still counts as a timeout, so the outcome does not
            // depend on scheduling order.
            let started = Instant::now();
            let (tx, rx) = mpsc::channel();
            let owned = spec.clone();
            let shared = baselines.map(Arc::clone);
            let spawned = thread::Builder::new()
                .name(format!("job-{}", owned.id()))
                .spawn(move || {
                    let r = panic::catch_unwind(AssertUnwindSafe(|| {
                        owned.execute_with(shared.as_deref())
                    }))
                    .map_err(|payload| panic_message(payload.as_ref()));
                    let _ = tx.send(r);
                });
            match spawned {
                Err(e) => Err(format!("failed to spawn job thread: {e}")),
                Ok(_) => match rx.recv_timeout(limit) {
                    Ok(r) if started.elapsed() <= limit => r,
                    Ok(_) | Err(_) => {
                        return Attempt {
                            output: Err(format!("timed out after {:.1}s", limit.as_secs_f64())),
                            cache_hit: false,
                            baseline: None,
                            timed_out: true,
                            cached: false,
                        }
                    }
                },
            }
        }
    };
    match result {
        Ok((output, baseline)) => {
            // Commit the result BEFORE job_done is journalled: once a
            // completion is visible in the journal, the bytes backing it
            // are already durable.
            let mut cached = false;
            if let Some(cache) = cache {
                match cache.store(spec, &output) {
                    Ok(()) => cached = true,
                    Err(e) => eprintln!(
                        "[harness] warning: cache write for {} failed: {e}",
                        spec.id()
                    ),
                }
            }
            Attempt {
                output: Ok(output),
                cache_hit: false,
                baseline,
                timed_out: false,
                cached,
            }
        }
        Err(e) => Attempt {
            output: Err(e),
            cache_hit: false,
            baseline: None,
            timed_out: false,
            cached: false,
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn print_progress(done: usize, total: usize, hits: usize, started: &Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    let eta = if done > 0 {
        elapsed / done as f64 * (total - done) as f64
    } else {
        0.0
    };
    eprint!(
        "\r[harness] {done}/{total} jobs ({hits} cached) elapsed {elapsed:.1}s eta {eta:.1}s   "
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<JobSpec> {
        (0..4)
            .map(|m| JobSpec::Fig3Point {
                nodes: 16,
                corner: m % 2 == 1,
                ht_count: m,
                seeds: vec![0, 1],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let jobs = tiny_jobs();
        let seq = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let par = run_jobs(
            &jobs,
            &RunOptions {
                workers: 4,
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
        }
    }

    #[test]
    fn retry_delay_is_deterministic_exponential_and_jittered() {
        let d1 = retry_delay_ms(7, "fig3-a", 1, 25);
        let d2 = retry_delay_ms(7, "fig3-a", 2, 25);
        let d3 = retry_delay_ms(7, "fig3-a", 3, 25);
        assert_eq!(d1, retry_delay_ms(7, "fig3-a", 1, 25), "reproducible");
        // Exponential envelope: base*2^(n-1) <= delay < base*2^(n-1)+base.
        assert!((25..50).contains(&d1), "{d1}");
        assert!((50..75).contains(&d2), "{d2}");
        assert!((100..125).contains(&d3), "{d3}");
        // Jitter separates jobs and seeds.
        assert_ne!(
            retry_delay_ms(7, "fig3-a", 1, 1000),
            retry_delay_ms(7, "fig3-b", 1, 1000)
        );
        assert_ne!(
            retry_delay_ms(7, "fig3-a", 1, 1000),
            retry_delay_ms(8, "fig3-a", 1, 1000)
        );
        // base 0 disables backoff; the shift saturates far out.
        assert_eq!(retry_delay_ms(7, "x", 5, 0), 0);
        assert!(retry_delay_ms(7, "x", 40, 25) >= 25 * 1024);
    }

    #[test]
    fn baseline_cache_keeps_outputs_identical_and_journals_use() {
        use crate::job::CampaignScale;
        use htpb_attack::Mix;
        let jobs: Vec<JobSpec> = [0u32, 3, 6]
            .iter()
            .map(|&duty_tenths| JobSpec::SweepPoint {
                mix: Mix::Mix1,
                scale: CampaignScale::Tiny,
                duty_tenths,
            })
            .collect();
        let plain = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let journal_path =
            std::env::temp_dir().join(format!("htpb-runner-baseline-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal_path);
        let journal = Journal::open(&journal_path).unwrap();
        let cache = Arc::new(BaselineCache::in_memory());
        let cached = run_jobs(
            &jobs,
            &RunOptions {
                baselines: Some(Arc::clone(&cache)),
                ..RunOptions::sequential()
            },
            &journal,
        );
        for (a, b) in plain.iter().zip(&cached) {
            // Memoized baselines are bit-identical to inline ones.
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
            assert_eq!(a.baseline, None, "no cache configured, nothing to report");
            assert!(b.baseline.is_some(), "sweep jobs report baseline use");
        }
        // All three duty points share one config: one computation, two hits.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        let text = std::fs::read_to_string(&journal_path).unwrap();
        assert_eq!(text.matches("\"event\":\"baseline_miss\"").count(), 1);
        assert_eq!(text.matches("\"event\":\"baseline_hit\"").count(), 2);
        let _ = std::fs::remove_file(&journal_path);
    }

    #[test]
    fn executed_jobs_bracket_start_and_done() {
        let journal_path =
            std::env::temp_dir().join(format!("htpb-runner-bracket-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal_path);
        let journal = Journal::open(&journal_path).unwrap();
        let jobs = tiny_jobs();
        run_jobs(&jobs, &RunOptions::sequential(), &journal);
        let text = std::fs::read_to_string(&journal_path).unwrap();
        assert_eq!(text.matches("\"event\":\"job_start\"").count(), jobs.len());
        assert_eq!(text.matches("\"event\":\"job_done\"").count(), jobs.len());
        assert!(
            Journal::interrupted_job_ids(&journal_path)
                .unwrap()
                .is_empty(),
            "a clean run leaves no unbalanced starts"
        );
        // Cache hits skip job_start entirely.
        let dir =
            std::env::temp_dir().join(format!("htpb-runner-bracket-c-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            cache: Some(ResultCache::open(&dir).unwrap()),
            ..RunOptions::sequential()
        };
        run_jobs(&jobs, &opts, &Journal::disabled());
        let hit_path =
            std::env::temp_dir().join(format!("htpb-runner-bracket2-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&hit_path);
        let hit_journal = Journal::open(&hit_path).unwrap();
        let reports = run_jobs(&jobs, &opts, &hit_journal);
        assert!(reports.iter().all(|r| r.cache_hit));
        let text = std::fs::read_to_string(&hit_path).unwrap();
        assert_eq!(text.matches("\"event\":\"job_start\"").count(), 0);
        assert_eq!(
            text.matches("\"cached\":true").count(),
            jobs.len(),
            "hits report the result as durably cached"
        );
        let _ = std::fs::remove_file(&journal_path);
        let _ = std::fs::remove_file(&hit_path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_job_is_isolated() {
        // nodes = 0 makes Mesh2d::with_nodes fail and the experiment
        // constructor panic; the other jobs must still complete.
        let mut jobs = tiny_jobs();
        jobs.insert(
            1,
            JobSpec::Fig3Point {
                nodes: 0,
                corner: false,
                ht_count: 1,
                seeds: vec![0],
            },
        );
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                workers: 2,
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        assert_eq!(reports.len(), 5);
        assert!(reports[1].output.is_err(), "bad job must fail");
        for (i, r) in reports.iter().enumerate() {
            if i != 1 {
                assert!(r.output.is_ok(), "job {i} should survive the panic");
            }
        }
    }

    #[test]
    fn generous_timeout_matches_untimed_run() {
        let jobs = tiny_jobs();
        let untimed = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let timed = run_jobs(
            &jobs,
            &RunOptions {
                job_timeout: Some(Duration::from_secs(600)),
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        for (a, b) in untimed.iter().zip(&timed) {
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
        }
    }

    #[test]
    fn timed_out_job_retries_then_fails_without_wedging_the_pool() {
        let path =
            std::env::temp_dir().join(format!("htpb-runner-timeout-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        // A 1ns budget cannot cover a real simulation (milliseconds), so
        // every job deterministically times out twice (initial attempt +
        // one retry) and the pool must still drain. Jobs need ht_count > 0:
        // the zero-Trojan shortcut is fast enough to win the recv race.
        let jobs: Vec<JobSpec> = (1..4)
            .map(|m| JobSpec::Fig3Point {
                nodes: 16,
                corner: false,
                ht_count: m,
                seeds: vec![0, 1],
            })
            .collect();
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                workers: 2,
                job_timeout: Some(Duration::from_nanos(1)),
                retries: 1,
                retry_base_ms: 1,
                ..RunOptions::sequential()
            },
            &journal,
        );
        assert_eq!(reports.len(), jobs.len(), "pool must not wedge");
        for r in &reports {
            let err = r.output.as_ref().unwrap_err();
            assert!(err.contains("timed out"), "unexpected error: {err}");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let timeouts = text.matches("\"event\":\"job_timeout\"").count();
        let retries = text.matches("\"event\":\"job_retry\"").count();
        assert_eq!(
            timeouts,
            2 * jobs.len(),
            "each job: initial attempt + one retry both time out\n{text}"
        );
        assert_eq!(retries, jobs.len(), "exactly one retry per job\n{text}");
        assert_eq!(
            text.matches("\"delay_ms\":").count(),
            jobs.len(),
            "every retry journals its computed backoff\n{text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_job_is_retried_and_recovers() {
        let pid = std::process::id();
        let marker = std::env::temp_dir().join(format!("htpb-runner-flaky-{pid}.marker"));
        let journal_path = std::env::temp_dir().join(format!("htpb-runner-flaky-{pid}.jsonl"));
        let _ = std::fs::remove_file(&marker);
        let _ = std::fs::remove_file(&journal_path);
        let journal = Journal::open(&journal_path).unwrap();
        // The probe panics on its first attempt (and drops a marker file),
        // then succeeds; with one retry the pool must deliver the success.
        let jobs = vec![JobSpec::FlakyProbe {
            marker: marker.to_string_lossy().into_owned(),
        }];
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                retries: 1,
                retry_base_ms: 1,
                ..RunOptions::sequential()
            },
            &journal,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].output.as_ref().unwrap(),
            &JobOutput::Rate(1.0),
            "retry must recover the flaky job"
        );
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let retry_at = text
            .find("\"event\":\"job_retry\"")
            .expect("journal records the retry");
        let ok_at = text
            .find("\"ok\":true")
            .expect("journal records the eventual success");
        assert!(
            retry_at < ok_at,
            "retry must be journalled before the success\n{text}"
        );
        assert_eq!(
            text.matches("\"event\":\"job_retry\"").count(),
            1,
            "exactly one retry\n{text}"
        );
        assert_eq!(
            text.matches("\"event\":\"job_timeout\"").count(),
            0,
            "a plain failure is not a timeout\n{text}"
        );
        assert_eq!(
            text.matches("\"event\":\"job_start\"").count(),
            2,
            "both executed attempts announce a job_start\n{text}"
        );
        let _ = std::fs::remove_file(&marker);
        let _ = std::fs::remove_file(&journal_path);
    }
}
