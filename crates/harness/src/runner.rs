//! Fixed-size worker pool executing [`JobSpec`]s.
//!
//! Scheduling is a shared atomic work index over an immutable job slice:
//! workers claim the next unclaimed job, execute it (or serve it from the
//! cache) and write the report into that job's slot. Results are returned
//! **in job order**, regardless of which worker finished when — combined
//! with per-job determinism this makes parallel campaigns byte-identical
//! to sequential ones.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! scenario records a failure and the rest of the campaign continues.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use crate::cache::ResultCache;
use crate::job::{JobOutput, JobSpec};
use crate::journal::Journal;

/// Pool configuration.
#[derive(Debug)]
pub struct RunOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Result cache; `None` disables caching entirely (`--no-cache`).
    pub cache: Option<ResultCache>,
    /// Emit a progress/ETA line on stderr while running.
    pub progress: bool,
}

impl RunOptions {
    /// Sequential, uncached, quiet — the baseline configuration tests use.
    #[must_use]
    pub fn sequential() -> RunOptions {
        RunOptions {
            workers: 1,
            cache: None,
            progress: false,
        }
    }

    /// The number of workers `--jobs 0` / no flag resolves to: one per
    /// available core.
    #[must_use]
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobReport {
    /// The executed spec.
    pub spec: JobSpec,
    /// The result, or the panic message if the job's scenario panicked.
    pub output: Result<JobOutput, String>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Wall time of this job (near zero for cache hits).
    pub secs: f64,
    /// Index of the worker that ran the job.
    pub worker: usize,
}

impl JobReport {
    /// The output, panicking with the job id on a failed job. Campaign
    /// assembly uses this for artefacts that cannot tolerate holes.
    #[must_use]
    pub fn expect_output(&self) -> &JobOutput {
        match &self.output {
            Ok(out) => out,
            Err(e) => panic!("job {} failed: {e}", self.spec.id()),
        }
    }
}

/// Executes `jobs` on the pool and returns one report per job, in job
/// order. Journal entries are appended as jobs complete (completion
/// order); pass [`Journal::disabled`] to skip journalling.
pub fn run_jobs(jobs: &[JobSpec], opts: &RunOptions, journal: &Journal) -> Vec<JobReport> {
    let total = jobs.len();
    let workers = opts.workers.max(1).min(total.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let started = Instant::now();

    thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let done = &done;
            let hits = &hits;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let spec = &jobs[i];
                let t0 = Instant::now();
                let (output, cache_hit) = execute_one(spec, opts.cache.as_ref());
                let secs = t0.elapsed().as_secs_f64();
                journal.job(
                    &spec.id(),
                    spec.kind(),
                    worker,
                    cache_hit,
                    output.is_ok(),
                    secs,
                    output.as_ref().err().map(String::as_str),
                );
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(JobReport {
                    spec: spec.clone(),
                    output,
                    cache_hit,
                    secs,
                    worker,
                });
                if cache_hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if opts.progress {
                    print_progress(finished, total, hits.load(Ordering::Relaxed), &started);
                }
            });
        }
    });

    if opts.progress && total > 0 {
        eprintln!();
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed job writes its slot")
        })
        .collect()
}

fn execute_one(spec: &JobSpec, cache: Option<&ResultCache>) -> (Result<JobOutput, String>, bool) {
    if let Some(cache) = cache {
        if let Some(output) = cache.load(spec) {
            return (Ok(output), true);
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(|| spec.execute()));
    match result {
        Ok(output) => {
            if let Some(cache) = cache {
                if let Err(e) = cache.store(spec, &output) {
                    eprintln!(
                        "[harness] warning: cache write for {} failed: {e}",
                        spec.id()
                    );
                }
            }
            (Ok(output), false)
        }
        Err(payload) => (Err(panic_message(payload.as_ref())), false),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn print_progress(done: usize, total: usize, hits: usize, started: &Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    let eta = if done > 0 {
        elapsed / done as f64 * (total - done) as f64
    } else {
        0.0
    };
    eprint!(
        "\r[harness] {done}/{total} jobs ({hits} cached) elapsed {elapsed:.1}s eta {eta:.1}s   "
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<JobSpec> {
        (0..4)
            .map(|m| JobSpec::Fig3Point {
                nodes: 16,
                corner: m % 2 == 1,
                ht_count: m,
                seeds: vec![0, 1],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let jobs = tiny_jobs();
        let seq = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let par = run_jobs(
            &jobs,
            &RunOptions {
                workers: 4,
                cache: None,
                progress: false,
            },
            &Journal::disabled(),
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        // nodes = 0 makes Mesh2d::with_nodes fail and the experiment
        // constructor panic; the other jobs must still complete.
        let mut jobs = tiny_jobs();
        jobs.insert(
            1,
            JobSpec::Fig3Point {
                nodes: 0,
                corner: false,
                ht_count: 1,
                seeds: vec![0],
            },
        );
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                workers: 2,
                cache: None,
                progress: false,
            },
            &Journal::disabled(),
        );
        assert_eq!(reports.len(), 5);
        assert!(reports[1].output.is_err(), "bad job must fail");
        for (i, r) in reports.iter().enumerate() {
            if i != 1 {
                assert!(r.output.is_ok(), "job {i} should survive the panic");
            }
        }
    }
}
