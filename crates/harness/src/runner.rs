//! Fixed-size worker pool executing [`JobSpec`]s.
//!
//! Scheduling is a shared atomic work index over an immutable job slice:
//! workers claim the next unclaimed job, execute it (or serve it from the
//! cache) and write the report into that job's slot. Results are returned
//! **in job order**, regardless of which worker finished when — combined
//! with per-job determinism this makes parallel campaigns byte-identical
//! to sequential ones.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! scenario records a failure and the rest of the campaign continues.
//!
//! With [`RunOptions::job_timeout`] set, each job additionally runs on a
//! detached thread bounded by a wall-clock limit: a hung scenario times
//! out (leaking its thread rather than wedging the pool), is retried up to
//! [`RunOptions::retries`] times, and finally records a failure. Timeouts
//! and retries land in the journal as `job_timeout` / `job_retry` events.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::baseline::BaselineCache;
use crate::cache::ResultCache;
use crate::job::{JobOutput, JobSpec};
use crate::journal::Journal;
use crate::json::Value;

/// Pool configuration.
#[derive(Debug)]
pub struct RunOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Result cache; `None` disables caching entirely (`--no-cache`).
    pub cache: Option<ResultCache>,
    /// Clean-baseline memoization shared by all workers; `None` computes
    /// baselines inline per job (bit-identical, just slower).
    pub baselines: Option<Arc<BaselineCache>>,
    /// Emit a progress/ETA line on stderr while running.
    pub progress: bool,
    /// Per-job wall-clock limit; `None` (the default) lets jobs run
    /// unbounded on the worker thread itself.
    pub job_timeout: Option<Duration>,
    /// How many times a timed-out job is retried before it is recorded as
    /// failed (`--retries`, default 1).
    pub retries: u32,
}

impl RunOptions {
    /// Sequential, uncached, quiet — the baseline configuration tests use.
    #[must_use]
    pub fn sequential() -> RunOptions {
        RunOptions {
            workers: 1,
            cache: None,
            baselines: None,
            progress: false,
            job_timeout: None,
            retries: 1,
        }
    }

    /// The number of workers `--jobs 0` / no flag resolves to: one per
    /// available core.
    #[must_use]
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobReport {
    /// The executed spec.
    pub spec: JobSpec,
    /// The result, or the panic message if the job's scenario panicked.
    pub output: Result<JobOutput, String>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Baseline-cache use: `None` for jobs without a shared clean baseline
    /// (or when no [`BaselineCache`] was configured, or on a result-cache
    /// hit), otherwise whether the baseline was served from the cache.
    pub baseline: Option<bool>,
    /// Wall time of this job (near zero for cache hits).
    pub secs: f64,
    /// Index of the worker that ran the job.
    pub worker: usize,
}

impl JobReport {
    /// The output, panicking with the job id on a failed job. Campaign
    /// assembly uses this for artefacts that cannot tolerate holes.
    #[must_use]
    pub fn expect_output(&self) -> &JobOutput {
        match &self.output {
            Ok(out) => out,
            Err(e) => panic!("job {} failed: {e}", self.spec.id()),
        }
    }
}

/// Executes `jobs` on the pool and returns one report per job, in job
/// order. Journal entries are appended as jobs complete (completion
/// order); pass [`Journal::disabled`] to skip journalling.
pub fn run_jobs(jobs: &[JobSpec], opts: &RunOptions, journal: &Journal) -> Vec<JobReport> {
    let total = jobs.len();
    let workers = opts.workers.max(1).min(total.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let started = Instant::now();

    thread::scope(|scope| {
        for worker in 0..workers {
            let next = &next;
            let done = &done;
            let hits = &hits;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let spec = &jobs[i];
                let t0 = Instant::now();
                let (output, cache_hit, baseline) = execute_with_retries(spec, opts, journal);
                let secs = t0.elapsed().as_secs_f64();
                journal.job(
                    &spec.id(),
                    spec.kind(),
                    worker,
                    cache_hit,
                    output.is_ok(),
                    secs,
                    output.as_ref().err().map(String::as_str),
                );
                if let Some(hit) = baseline {
                    journal.record(
                        if hit { "baseline_hit" } else { "baseline_miss" },
                        vec![("id", Value::Str(spec.id()))],
                    );
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(JobReport {
                    spec: spec.clone(),
                    output,
                    cache_hit,
                    baseline,
                    secs,
                    worker,
                });
                if cache_hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if opts.progress {
                    print_progress(finished, total, hits.load(Ordering::Relaxed), &started);
                }
            });
        }
    });

    if opts.progress && total > 0 {
        eprintln!();
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed job writes its slot")
        })
        .collect()
}

/// Runs one job under the pool's timeout/retry policy. A timed-out attempt
/// is journalled (`job_timeout`) and retried (`job_retry`) until the retry
/// budget runs out; a failed (panicking) attempt is likewise retried — a
/// crashed worker machine and a hung one are the same event to a campaign.
/// The final attempt's outcome is returned. Cache hits are never retried
/// (they are `Ok` by construction).
fn execute_with_retries(
    spec: &JobSpec,
    opts: &RunOptions,
    journal: &Journal,
) -> (Result<JobOutput, String>, bool, Option<bool>) {
    let mut attempt: u32 = 0;
    loop {
        let (output, cache_hit, baseline, timed_out) = execute_one(
            spec,
            opts.cache.as_ref(),
            opts.baselines.as_ref(),
            opts.job_timeout,
        );
        if timed_out {
            journal.record(
                "job_timeout",
                vec![
                    ("id", Value::Str(spec.id())),
                    ("attempt", Value::Int(i64::from(attempt) + 1)),
                    (
                        "limit_secs",
                        Value::Num(opts.job_timeout.map_or(0.0, |d| d.as_secs_f64())),
                    ),
                ],
            );
        }
        let retryable = timed_out || (!cache_hit && output.is_err());
        if retryable && attempt < opts.retries {
            attempt += 1;
            journal.record(
                "job_retry",
                vec![
                    ("id", Value::Str(spec.id())),
                    ("attempt", Value::Int(i64::from(attempt) + 1)),
                ],
            );
            continue;
        }
        return (output, cache_hit, baseline);
    }
}

/// Runs one attempt. The last return flags a wall-clock timeout (the
/// caller decides whether to retry); the `Option<bool>` reports
/// baseline-cache use exactly as [`JobSpec::execute_with`] does.
fn execute_one(
    spec: &JobSpec,
    cache: Option<&ResultCache>,
    baselines: Option<&Arc<BaselineCache>>,
    timeout: Option<Duration>,
) -> (Result<JobOutput, String>, bool, Option<bool>, bool) {
    if let Some(cache) = cache {
        if let Some(output) = cache.load(spec) {
            // A result-cache hit never touches the baseline layer.
            return (Ok(output), true, None, false);
        }
    }
    let result = match timeout {
        None => panic::catch_unwind(AssertUnwindSafe(|| {
            spec.execute_with(baselines.map(Arc::as_ref))
        }))
        .map_err(|payload| panic_message(payload.as_ref())),
        Some(limit) => {
            // The job runs on a detached thread so a hung scenario cannot
            // wedge the worker: on timeout the thread is leaked (it parks
            // on a disconnected channel when it eventually finishes) and
            // the pool moves on. The limit is a hard wall-clock budget:
            // a result that arrives late (the scheduler can run the job
            // to completion before this thread ever blocks on the
            // channel) still counts as a timeout, so the outcome does not
            // depend on scheduling order.
            let started = Instant::now();
            let (tx, rx) = mpsc::channel();
            let owned = spec.clone();
            let shared = baselines.map(Arc::clone);
            let spawned = thread::Builder::new()
                .name(format!("job-{}", owned.id()))
                .spawn(move || {
                    let r = panic::catch_unwind(AssertUnwindSafe(|| {
                        owned.execute_with(shared.as_deref())
                    }))
                    .map_err(|payload| panic_message(payload.as_ref()));
                    let _ = tx.send(r);
                });
            match spawned {
                Err(e) => Err(format!("failed to spawn job thread: {e}")),
                Ok(_) => match rx.recv_timeout(limit) {
                    Ok(r) if started.elapsed() <= limit => r,
                    Ok(_) | Err(_) => {
                        return (
                            Err(format!("timed out after {:.1}s", limit.as_secs_f64())),
                            false,
                            None,
                            true,
                        )
                    }
                },
            }
        }
    };
    match result {
        Ok((output, baseline)) => {
            if let Some(cache) = cache {
                if let Err(e) = cache.store(spec, &output) {
                    eprintln!(
                        "[harness] warning: cache write for {} failed: {e}",
                        spec.id()
                    );
                }
            }
            (Ok(output), false, baseline, false)
        }
        Err(e) => (Err(e), false, None, false),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn print_progress(done: usize, total: usize, hits: usize, started: &Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    let eta = if done > 0 {
        elapsed / done as f64 * (total - done) as f64
    } else {
        0.0
    };
    eprint!(
        "\r[harness] {done}/{total} jobs ({hits} cached) elapsed {elapsed:.1}s eta {eta:.1}s   "
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<JobSpec> {
        (0..4)
            .map(|m| JobSpec::Fig3Point {
                nodes: 16,
                corner: m % 2 == 1,
                ht_count: m,
                seeds: vec![0, 1],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let jobs = tiny_jobs();
        let seq = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let par = run_jobs(
            &jobs,
            &RunOptions {
                workers: 4,
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
        }
    }

    #[test]
    fn baseline_cache_keeps_outputs_identical_and_journals_use() {
        use crate::job::CampaignScale;
        use htpb_attack::Mix;
        let jobs: Vec<JobSpec> = [0u32, 3, 6]
            .iter()
            .map(|&duty_tenths| JobSpec::SweepPoint {
                mix: Mix::Mix1,
                scale: CampaignScale::Tiny,
                duty_tenths,
            })
            .collect();
        let plain = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let journal_path =
            std::env::temp_dir().join(format!("htpb-runner-baseline-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal_path);
        let journal = Journal::open(&journal_path).unwrap();
        let cache = Arc::new(BaselineCache::in_memory());
        let cached = run_jobs(
            &jobs,
            &RunOptions {
                baselines: Some(Arc::clone(&cache)),
                ..RunOptions::sequential()
            },
            &journal,
        );
        for (a, b) in plain.iter().zip(&cached) {
            // Memoized baselines are bit-identical to inline ones.
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
            assert_eq!(a.baseline, None, "no cache configured, nothing to report");
            assert!(b.baseline.is_some(), "sweep jobs report baseline use");
        }
        // All three duty points share one config: one computation, two hits.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        let text = std::fs::read_to_string(&journal_path).unwrap();
        assert_eq!(text.matches("\"event\":\"baseline_miss\"").count(), 1);
        assert_eq!(text.matches("\"event\":\"baseline_hit\"").count(), 2);
        let _ = std::fs::remove_file(&journal_path);
    }

    #[test]
    fn panicking_job_is_isolated() {
        // nodes = 0 makes Mesh2d::with_nodes fail and the experiment
        // constructor panic; the other jobs must still complete.
        let mut jobs = tiny_jobs();
        jobs.insert(
            1,
            JobSpec::Fig3Point {
                nodes: 0,
                corner: false,
                ht_count: 1,
                seeds: vec![0],
            },
        );
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                workers: 2,
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        assert_eq!(reports.len(), 5);
        assert!(reports[1].output.is_err(), "bad job must fail");
        for (i, r) in reports.iter().enumerate() {
            if i != 1 {
                assert!(r.output.is_ok(), "job {i} should survive the panic");
            }
        }
    }

    #[test]
    fn generous_timeout_matches_untimed_run() {
        let jobs = tiny_jobs();
        let untimed = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
        let timed = run_jobs(
            &jobs,
            &RunOptions {
                job_timeout: Some(Duration::from_secs(600)),
                ..RunOptions::sequential()
            },
            &Journal::disabled(),
        );
        for (a, b) in untimed.iter().zip(&timed) {
            assert_eq!(a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
        }
    }

    #[test]
    fn timed_out_job_retries_then_fails_without_wedging_the_pool() {
        let path =
            std::env::temp_dir().join(format!("htpb-runner-timeout-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        // A 1ns budget cannot cover a real simulation (milliseconds), so
        // every job deterministically times out twice (initial attempt +
        // one retry) and the pool must still drain. Jobs need ht_count > 0:
        // the zero-Trojan shortcut is fast enough to win the recv race.
        let jobs: Vec<JobSpec> = (1..4)
            .map(|m| JobSpec::Fig3Point {
                nodes: 16,
                corner: false,
                ht_count: m,
                seeds: vec![0, 1],
            })
            .collect();
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                workers: 2,
                job_timeout: Some(Duration::from_nanos(1)),
                retries: 1,
                ..RunOptions::sequential()
            },
            &journal,
        );
        assert_eq!(reports.len(), jobs.len(), "pool must not wedge");
        for r in &reports {
            let err = r.output.as_ref().unwrap_err();
            assert!(err.contains("timed out"), "unexpected error: {err}");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let timeouts = text.matches("\"event\":\"job_timeout\"").count();
        let retries = text.matches("\"event\":\"job_retry\"").count();
        assert_eq!(
            timeouts,
            2 * jobs.len(),
            "each job: initial attempt + one retry both time out\n{text}"
        );
        assert_eq!(retries, jobs.len(), "exactly one retry per job\n{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_job_is_retried_and_recovers() {
        let pid = std::process::id();
        let marker = std::env::temp_dir().join(format!("htpb-runner-flaky-{pid}.marker"));
        let journal_path = std::env::temp_dir().join(format!("htpb-runner-flaky-{pid}.jsonl"));
        let _ = std::fs::remove_file(&marker);
        let _ = std::fs::remove_file(&journal_path);
        let journal = Journal::open(&journal_path).unwrap();
        // The probe panics on its first attempt (and drops a marker file),
        // then succeeds; with one retry the pool must deliver the success.
        let jobs = vec![JobSpec::FlakyProbe {
            marker: marker.to_string_lossy().into_owned(),
        }];
        let reports = run_jobs(
            &jobs,
            &RunOptions {
                retries: 1,
                ..RunOptions::sequential()
            },
            &journal,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].output.as_ref().unwrap(),
            &JobOutput::Rate(1.0),
            "retry must recover the flaky job"
        );
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let retry_at = text
            .find("\"event\":\"job_retry\"")
            .expect("journal records the retry");
        let ok_at = text
            .find("\"ok\":true")
            .expect("journal records the eventual success");
        assert!(
            retry_at < ok_at,
            "retry must be journalled before the success\n{text}"
        );
        assert_eq!(
            text.matches("\"event\":\"job_retry\"").count(),
            1,
            "exactly one retry\n{text}"
        );
        assert_eq!(
            text.matches("\"event\":\"job_timeout\"").count(),
            0,
            "a plain failure is not a timeout\n{text}"
        );
        let _ = std::fs::remove_file(&marker);
        let _ = std::fs::remove_file(&journal_path);
    }
}
