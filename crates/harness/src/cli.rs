//! Shared command-line flag parsing for the harness-driven binaries.
//!
//! Every binary that runs campaigns through the pool accepts the same
//! trio of flags:
//!
//! - `--jobs N` — worker threads (default: one per core; `0` also means
//!   one per core);
//! - `--no-cache` — recompute everything, don't read or write the cache;
//! - `--resume` — explicitly request cache reuse (the default; overrides
//!   an earlier `--no-cache`);
//! - `--job-timeout SECS` — per-job wall-clock limit (`0` or absent =
//!   unbounded); a timed-out job is retried, then recorded as failed;
//! - `--retries N` — retries per timed-out job (default 1);
//! - `--retry-base-ms N` — base unit of the deterministic exponential
//!   retry backoff (default 25; `0` = immediate re-queue);
//! - `--retry-seed N` — seed folded into the backoff jitter (default 0);
//! - `--metrics` — enable runtime metric collection (`htpb-obs`): writes
//!   `results/metrics.prom`, embeds a JSON snapshot in the journal's
//!   `run_end` record and prints a summary block on stderr.
//!
//! Binary-specific flags are returned untouched in [`HarnessArgs::rest`].

use std::time::Duration;

use crate::runner::RunOptions;

/// Parsed harness flags plus the arguments the binary handles itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Worker threads requested (`None` = one per core).
    pub jobs: Option<usize>,
    /// Whether the cache is enabled.
    pub use_cache: bool,
    /// Per-job wall-clock limit in seconds (`None` = unbounded).
    pub job_timeout_secs: Option<u64>,
    /// Retries per timed-out job.
    pub retries: u32,
    /// Base unit (ms) of the deterministic exponential retry backoff.
    pub retry_base_ms: u64,
    /// Seed folded into the retry-backoff jitter.
    pub retry_seed: u64,
    /// Whether `--metrics` collection was requested.
    pub metrics: bool,
    /// Arguments not consumed by the harness.
    pub rest: Vec<String>,
}

impl HarnessArgs {
    /// Parses harness flags out of an argument iterator (without the
    /// program name). `Err` carries a usage message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut parsed = HarnessArgs {
            jobs: None,
            use_cache: true,
            job_timeout_secs: None,
            retries: 1,
            retry_base_ms: 25,
            retry_seed: 0,
            metrics: false,
            rest: Vec::new(),
        };
        let mut it = args.into_iter();
        let number = |flag: &str, text: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{flag}: invalid number `{text}`"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--jobs requires a number".to_string())?;
                    parsed.jobs = Some(number("--jobs", &n)? as usize);
                }
                _ if arg.starts_with("--jobs=") => {
                    parsed.jobs = Some(number("--jobs", &arg["--jobs=".len()..])? as usize);
                }
                "--job-timeout" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--job-timeout requires seconds".to_string())?;
                    parsed.job_timeout_secs = Some(number("--job-timeout", &n)?);
                }
                _ if arg.starts_with("--job-timeout=") => {
                    parsed.job_timeout_secs =
                        Some(number("--job-timeout", &arg["--job-timeout=".len()..])?);
                }
                "--retries" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--retries requires a number".to_string())?;
                    parsed.retries = number("--retries", &n)? as u32;
                }
                _ if arg.starts_with("--retries=") => {
                    parsed.retries = number("--retries", &arg["--retries=".len()..])? as u32;
                }
                "--retry-base-ms" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--retry-base-ms requires a number".to_string())?;
                    parsed.retry_base_ms = number("--retry-base-ms", &n)?;
                }
                _ if arg.starts_with("--retry-base-ms=") => {
                    parsed.retry_base_ms =
                        number("--retry-base-ms", &arg["--retry-base-ms=".len()..])?;
                }
                "--retry-seed" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--retry-seed requires a number".to_string())?;
                    parsed.retry_seed = number("--retry-seed", &n)?;
                }
                _ if arg.starts_with("--retry-seed=") => {
                    parsed.retry_seed = number("--retry-seed", &arg["--retry-seed=".len()..])?;
                }
                "--no-cache" => parsed.use_cache = false,
                "--resume" => parsed.use_cache = true,
                "--metrics" => parsed.metrics = true,
                _ => parsed.rest.push(arg),
            }
        }
        Ok(parsed)
    }

    /// The per-job wall-clock limit this invocation resolves to (`0`
    /// seconds also means unbounded).
    #[must_use]
    pub fn job_timeout(&self) -> Option<Duration> {
        match self.job_timeout_secs {
            None | Some(0) => None,
            Some(secs) => Some(Duration::from_secs(secs)),
        }
    }

    /// The worker count this invocation resolves to.
    #[must_use]
    pub fn workers(&self) -> usize {
        match self.jobs {
            Some(0) | None => RunOptions::default_workers(),
            Some(n) => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]);
        assert_eq!(a.jobs, None);
        assert!(a.use_cache);
        assert!(!a.metrics, "metrics collection is opt-in");
        assert!(a.rest.is_empty());

        let a = parse(&["--metrics", "--quick"]);
        assert!(a.metrics);
        assert_eq!(a.rest, vec!["--quick".to_string()]);

        let a = parse(&["--quick", "--jobs", "4", "--no-cache"]);
        assert_eq!(a.jobs, Some(4));
        assert!(!a.use_cache);
        assert_eq!(a.rest, vec!["--quick".to_string()]);
        assert_eq!(a.workers(), 4);

        let a = parse(&["--jobs=2", "--no-cache", "--resume"]);
        assert_eq!(a.jobs, Some(2));
        assert!(a.use_cache, "--resume re-enables the cache");
    }

    #[test]
    fn timeout_and_retry_flags() {
        let a = parse(&[]);
        assert_eq!(a.job_timeout(), None);
        assert_eq!(a.retries, 1);

        let a = parse(&["--job-timeout", "30", "--retries", "2"]);
        assert_eq!(a.job_timeout(), Some(Duration::from_secs(30)));
        assert_eq!(a.retries, 2);

        let a = parse(&["--job-timeout=0", "--retries=0"]);
        assert_eq!(a.job_timeout(), None, "0 seconds means unbounded");
        assert_eq!(a.retries, 0);
    }

    #[test]
    fn backoff_flags() {
        let a = parse(&[]);
        assert_eq!(a.retry_base_ms, 25);
        assert_eq!(a.retry_seed, 0);
        let a = parse(&["--retry-base-ms", "100", "--retry-seed=7"]);
        assert_eq!(a.retry_base_ms, 100);
        assert_eq!(a.retry_seed, 7);
        let a = parse(&["--retry-base-ms=0"]);
        assert_eq!(a.retry_base_ms, 0, "0 disables backoff");
        assert!(HarnessArgs::parse(vec!["--retry-seed".to_string()]).is_err());
    }

    #[test]
    fn rejects_bad_jobs() {
        assert!(HarnessArgs::parse(vec!["--jobs".to_string()]).is_err());
        assert!(HarnessArgs::parse(vec!["--jobs".to_string(), "x".to_string()]).is_err());
        assert!(HarnessArgs::parse(vec!["--job-timeout".to_string()]).is_err());
        assert!(HarnessArgs::parse(vec!["--retries=x".to_string()]).is_err());
    }
}
