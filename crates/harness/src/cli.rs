//! Shared command-line flag parsing for the harness-driven binaries.
//!
//! Every binary that runs campaigns through the pool accepts the same
//! trio of flags:
//!
//! - `--jobs N` — worker threads (default: one per core; `0` also means
//!   one per core);
//! - `--no-cache` — recompute everything, don't read or write the cache;
//! - `--resume` — explicitly request cache reuse (the default; overrides
//!   an earlier `--no-cache`).
//!
//! Binary-specific flags are returned untouched in [`HarnessArgs::rest`].

use crate::runner::RunOptions;

/// Parsed harness flags plus the arguments the binary handles itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Worker threads requested (`None` = one per core).
    pub jobs: Option<usize>,
    /// Whether the cache is enabled.
    pub use_cache: bool,
    /// Arguments not consumed by the harness.
    pub rest: Vec<String>,
}

impl HarnessArgs {
    /// Parses harness flags out of an argument iterator (without the
    /// program name). `Err` carries a usage message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut parsed = HarnessArgs {
            jobs: None,
            use_cache: true,
            rest: Vec::new(),
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--jobs" => {
                    let n = it
                        .next()
                        .ok_or_else(|| "--jobs requires a number".to_string())?;
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("--jobs: invalid number `{n}`"))?;
                    parsed.jobs = Some(n);
                }
                _ if arg.starts_with("--jobs=") => {
                    let n = &arg["--jobs=".len()..];
                    parsed.jobs = Some(
                        n.parse()
                            .map_err(|_| format!("--jobs: invalid number `{n}`"))?,
                    );
                }
                "--no-cache" => parsed.use_cache = false,
                "--resume" => parsed.use_cache = true,
                _ => parsed.rest.push(arg),
            }
        }
        Ok(parsed)
    }

    /// The worker count this invocation resolves to.
    #[must_use]
    pub fn workers(&self) -> usize {
        match self.jobs {
            Some(0) | None => RunOptions::default_workers(),
            Some(n) => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]);
        assert_eq!(a.jobs, None);
        assert!(a.use_cache);
        assert!(a.rest.is_empty());

        let a = parse(&["--quick", "--jobs", "4", "--no-cache"]);
        assert_eq!(a.jobs, Some(4));
        assert!(!a.use_cache);
        assert_eq!(a.rest, vec!["--quick".to_string()]);
        assert_eq!(a.workers(), 4);

        let a = parse(&["--jobs=2", "--no-cache", "--resume"]);
        assert_eq!(a.jobs, Some(2));
        assert!(a.use_cache, "--resume re-enables the cache");
    }

    #[test]
    fn rejects_bad_jobs() {
        assert!(HarnessArgs::parse(vec!["--jobs".to_string()]).is_err());
        assert!(HarnessArgs::parse(vec!["--jobs".to_string(), "x".to_string()]).is_err());
    }
}
