//! The job abstraction: one schedulable unit of experiment work.
//!
//! A [`JobSpec`] captures *everything* that determines a result — experiment
//! kind, platform parameters and RNG seeds — so that executing the same spec
//! twice (on any worker, in any order) produces the same [`JobOutput`] bit
//! for bit. That determinism is what makes both the parallel pool and the
//! on-disk cache sound: parallel campaigns reassemble the exact sequential
//! artefacts, and cached results never go stale except through a schema
//! bump.

use htpb_attack::{AttackSample, Mix, PlacementStrategy};
use htpb_core::experiments::{
    attack_sweep_point, attack_sweep_point_with_baseline, fig3_point, fig4_point,
    optimal_vs_random, optimal_vs_random_with, regression_dataset, regression_dataset_with,
    regression_placements, resilience_point, CampaignConfig, ManagerLocation,
};
use htpb_core::AllocatorKind;

use crate::baseline::BaselineCache;
use crate::json::Value;

/// Which [`CampaignConfig`] constructor a campaign-based job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignScale {
    /// [`CampaignConfig::tiny`] — seconds-scale, for tests.
    Tiny,
    /// [`CampaignConfig::small`] — the `--quick` reproduction scale.
    Small,
    /// [`CampaignConfig::new`] — paper scale.
    Paper,
}

impl CampaignScale {
    /// Builds the campaign configuration for `mix` at this scale.
    #[must_use]
    pub fn config(self, mix: Mix) -> CampaignConfig {
        match self {
            CampaignScale::Tiny => CampaignConfig::tiny(mix),
            CampaignScale::Small => CampaignConfig::small(mix),
            CampaignScale::Paper => CampaignConfig::new(mix),
        }
    }

    /// Stable tag used in job ids (and therefore cache keys).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CampaignScale::Tiny => "tiny",
            CampaignScale::Small => "small",
            CampaignScale::Paper => "paper",
        }
    }
}

/// The Fig. 4 placement strategies, as a closed enum so job ids are stable
/// strings rather than opaque closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Strategy {
    /// Trojans clustered around the chip center.
    Center,
    /// Trojans placed uniformly at random (seed-averaged).
    Random,
    /// Trojans clustered in one corner.
    Corner,
}

impl Fig4Strategy {
    /// The legend label the sequential driver uses for this curve.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fig4Strategy::Center => "HTs around the center",
            Fig4Strategy::Random => "HTs distributed randomly",
            Fig4Strategy::Corner => "HTs in one corner",
        }
    }

    /// Stable tag used in job ids.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Fig4Strategy::Center => "center",
            Fig4Strategy::Random => "random",
            Fig4Strategy::Corner => "corner",
        }
    }

    /// The strategy constructor [`fig4_point`] expects.
    pub fn strategy_for(self) -> impl Fn(u64) -> PlacementStrategy {
        move |seed| match self {
            Fig4Strategy::Center => PlacementStrategy::CenterCluster,
            Fig4Strategy::Random => PlacementStrategy::Random { seed },
            Fig4Strategy::Corner => PlacementStrategy::CornerCluster,
        }
    }
}

/// One independently executable experiment point. Each variant wraps one of
/// the `htpb_core::experiments` drivers without changing its semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// One point of a Fig. 3 curve: seed-averaged infection rate for
    /// `ht_count` random Trojans.
    Fig3Point {
        /// Chip size in nodes.
        nodes: u32,
        /// Manager at a corner (`true`) or the center (`false`).
        corner: bool,
        /// Number of Trojans.
        ht_count: usize,
        /// Placement seeds to average over.
        seeds: Vec<u64>,
    },
    /// One point of a Fig. 4 curve: infection rate at a system size for a
    /// placement strategy, with `nodes / denominator` Trojans.
    Fig4Point {
        /// Chip size in nodes.
        nodes: u32,
        /// Placement strategy of the curve.
        strategy: Fig4Strategy,
        /// Trojan count divisor (paper: 16 and 8).
        denominator: u32,
        /// Seeds for the random strategy (ignored by deterministic ones).
        seeds: Vec<u64>,
    },
    /// One point of the Fig. 5 / Fig. 6 sweep: a full attack campaign at
    /// one Trojan duty cycle (including its own clean baseline, which is
    /// deterministic in the configuration).
    SweepPoint {
        /// Benchmark mix.
        mix: Mix,
        /// Campaign scale.
        scale: CampaignScale,
        /// Duty cycle in tenths (0..=9), kept integral so the id is exact.
        duty_tenths: u32,
    },
    /// Section V-C: optimal placement vs. the random average.
    OptCompare {
        /// Benchmark mix.
        mix: Mix,
        /// Campaign scale.
        scale: CampaignScale,
        /// Trojan budget for the optimizer.
        m: usize,
        /// Seeds for the random baseline placements.
        seeds: Vec<u64>,
    },
    /// Eq. 9 regression samples for one mix over the canonical placement
    /// list ([`regression_placements`]).
    RegressionMix {
        /// Benchmark mix.
        mix: Mix,
        /// Campaign scale for the base configuration.
        scale: CampaignScale,
        /// Chip size in nodes (overrides the scale's default).
        nodes: u32,
    },
    /// One cell of the resilience sweep: a full attack campaign (plus its
    /// equally-faulty clean baseline) under a seeded packet-drop fault
    /// plan, with or without manager hardening.
    Resilience {
        /// Benchmark mix.
        mix: Mix,
        /// Campaign scale.
        scale: CampaignScale,
        /// Allocation policy of this cell.
        allocator: AllocatorKind,
        /// Packet-drop fault rate in parts-per-million.
        drop_ppm: u32,
        /// Seed of the fault plan (shared by both campaign arms).
        fault_seed: u64,
        /// Whether the manager runs with hardening enabled.
        hardened: bool,
        /// Trojan duty cycle in tenths (0 = faults only, no attack).
        duty_tenths: u32,
    },
    /// A batch of differential-conformance scenarios: each random scenario
    /// derived from `seed` runs through the optimized network and the dense
    /// reference oracle in lock-step (see `htpb-testkit`); any divergence is
    /// shrunk to a minimal replayable spec before being reported.
    Conformance {
        /// Number of random scenarios in this batch.
        scenarios: u64,
        /// Master seed; scenario `i` uses `seed.wrapping_add(i)`.
        seed: u64,
    },
    /// Test-only probe that fails (panics) on its first execution and
    /// succeeds once `marker` exists on disk — exercises the pool's
    /// retry-on-failure path. Hidden because it is stateful by design and
    /// therefore must never be cached or used in a real campaign.
    #[doc(hidden)]
    FlakyProbe {
        /// Path of the marker file recording that one attempt already ran.
        marker: String,
    },
}

impl JobSpec {
    /// Short kind tag for journal entries and cache file names.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Fig3Point { .. } => "fig3",
            JobSpec::Fig4Point { .. } => "fig4",
            JobSpec::SweepPoint { .. } => "sweep",
            JobSpec::OptCompare { .. } => "opt",
            JobSpec::RegressionMix { .. } => "regression",
            JobSpec::Resilience { .. } => "resil",
            JobSpec::Conformance { .. } => "conf",
            JobSpec::FlakyProbe { .. } => "flaky",
        }
    }

    /// Stable, human-readable id encoding *every* parameter that affects
    /// the result. Two specs have equal ids iff they are the same job, so
    /// the cache key is a hash of this string (plus the schema version).
    #[must_use]
    pub fn id(&self) -> String {
        match self {
            JobSpec::Fig3Point {
                nodes,
                corner,
                ht_count,
                seeds,
            } => format!(
                "fig3-n{nodes}-{}-ht{ht_count}-s{}",
                if *corner { "corner" } else { "center" },
                seed_tag(seeds)
            ),
            JobSpec::Fig4Point {
                nodes,
                strategy,
                denominator,
                seeds,
            } => format!(
                "fig4-n{nodes}-d{denominator}-{}-s{}",
                strategy.tag(),
                seed_tag(seeds)
            ),
            JobSpec::SweepPoint {
                mix,
                scale,
                duty_tenths,
            } => format!("sweep-{}-{}-d{duty_tenths}", mix.name(), scale.tag()),
            JobSpec::OptCompare {
                mix,
                scale,
                m,
                seeds,
            } => format!(
                "opt-{}-{}-m{m}-s{}",
                mix.name(),
                scale.tag(),
                seed_tag(seeds)
            ),
            JobSpec::RegressionMix { mix, scale, nodes } => {
                format!("reg-{}-{}-n{nodes}", mix.name(), scale.tag())
            }
            JobSpec::Resilience {
                mix,
                scale,
                allocator,
                drop_ppm,
                fault_seed,
                hardened,
                duty_tenths,
            } => format!(
                "resil-{}-{}-{}-p{drop_ppm}-f{fault_seed}-{}-d{duty_tenths}",
                mix.name(),
                scale.tag(),
                allocator.name(),
                if *hardened { "hard" } else { "soft" }
            ),
            JobSpec::Conformance { scenarios, seed } => {
                format!("conf-n{scenarios}-s{seed:x}")
            }
            JobSpec::FlakyProbe { marker } => format!("flaky-{marker}"),
        }
    }

    /// Runs the job. Deterministic: all randomness derives from seeds that
    /// are part of the spec, so the output is a pure function of `self`.
    #[must_use]
    pub fn execute(&self) -> JobOutput {
        match self {
            JobSpec::Fig3Point {
                nodes,
                corner,
                ht_count,
                seeds,
            } => {
                let manager = if *corner {
                    ManagerLocation::Corner
                } else {
                    ManagerLocation::Center
                };
                JobOutput::Rate(fig3_point(*nodes, manager, *ht_count, seeds))
            }
            JobSpec::Fig4Point {
                nodes,
                strategy,
                denominator,
                seeds,
            } => JobOutput::Rate(fig4_point(
                *nodes,
                &strategy.strategy_for(),
                *denominator,
                seeds,
            )),
            JobSpec::SweepPoint {
                mix,
                scale,
                duty_tenths,
            } => {
                let cfg = scale.config(*mix);
                // Same expression as the sequential sweep (`i / 10.0`), so
                // the f64 duty is bit-identical.
                let duty = f64::from(*duty_tenths) / 10.0;
                let p = attack_sweep_point(&cfg, duty);
                JobOutput::Sweep {
                    duty: p.duty,
                    infection: p.infection,
                    q: p.q_value,
                    changes: p.outcome.changes.iter().map(|(_, _, c)| *c).collect(),
                }
            }
            JobSpec::OptCompare {
                mix,
                scale,
                m,
                seeds,
            } => {
                let cmp = optimal_vs_random(&scale.config(*mix), *m, seeds);
                JobOutput::Opt {
                    q_optimal: cmp.q_optimal,
                    q_random: cmp.q_random,
                    improvement: cmp.improvement,
                }
            }
            JobSpec::RegressionMix { mix, scale, nodes } => {
                let mut base = scale.config(Mix::Mix1);
                base.nodes = *nodes;
                let mesh = base.mesh();
                let manager = base.manager.resolve(mesh);
                let placements = regression_placements(mesh, manager);
                JobOutput::Samples(regression_dataset(&base, &[*mix], &placements))
            }
            JobSpec::Resilience {
                mix,
                scale,
                allocator,
                drop_ppm,
                fault_seed,
                hardened,
                duty_tenths,
            } => {
                let mut cfg = scale.config(*mix);
                cfg.allocator = *allocator;
                // Same duty expression as the sweep points, bit-identical.
                let duty = f64::from(*duty_tenths) / 10.0;
                let p = resilience_point(&cfg, *drop_ppm, *fault_seed, *hardened, duty);
                JobOutput::Resilience {
                    infection: p.infection,
                    q: p.q_value,
                    victim_theta: p.victim_theta,
                    baseline_victim_theta: p.baseline_victim_theta,
                    timeouts: p.degradation.timeouts,
                    rejects: p.degradation.rejects,
                    clamps: p.degradation.clamps,
                    faults_applied: p.faults_applied,
                }
            }
            JobSpec::Conformance { scenarios, seed } => {
                let report = htpb_testkit::run_batch(*seed, *scenarios);
                let config = htpb_testkit::DiffConfig::default();
                let failures = report
                    .failures
                    .iter()
                    .map(|(spec, _)| {
                        let scenario = htpb_testkit::Scenario::from_spec(spec)
                            .expect("run_batch emits well-formed specs");
                        htpb_testkit::shrink(&scenario, |c| {
                            htpb_testkit::run_differential(c, &config).is_some()
                        })
                        .to_spec()
                    })
                    .collect();
                JobOutput::Conformance {
                    passed: report.passed,
                    failures,
                }
            }
            JobSpec::FlakyProbe { marker } => {
                let path = std::path::Path::new(marker);
                if path.exists() {
                    return JobOutput::Rate(1.0);
                }
                crate::fs::commit_file(crate::fs::std_fs().as_ref(), path, b"attempted\n")
                    .expect("write flaky-probe marker");
                panic!("flaky probe: first attempt always fails");
            }
        }
    }

    /// Runs the job, resolving clean baselines through `baselines` when one
    /// is supplied. The second element reports baseline-cache use: `None`
    /// for jobs that have no shared clean baseline (or when no cache was
    /// given — the baseline is then computed inline, exactly as
    /// [`execute`](Self::execute) does), `Some(hit)` otherwise.
    ///
    /// Cached and inline baselines are bit-identical (the clean system is
    /// seeded independently of the attack side), so the [`JobOutput`] never
    /// depends on whether a cache was supplied.
    #[must_use]
    pub fn execute_with(&self, baselines: Option<&BaselineCache>) -> (JobOutput, Option<bool>) {
        let Some(cache) = baselines else {
            return (self.execute(), None);
        };
        match self {
            JobSpec::SweepPoint {
                mix,
                scale,
                duty_tenths,
            } => {
                let cfg = scale.config(*mix);
                let duty = f64::from(*duty_tenths) / 10.0;
                let (clean, hit) = cache.get_or_compute(&cfg);
                let p = attack_sweep_point_with_baseline(&cfg, duty, &clean);
                (
                    JobOutput::Sweep {
                        duty: p.duty,
                        infection: p.infection,
                        q: p.q_value,
                        changes: p.outcome.changes.iter().map(|(_, _, c)| *c).collect(),
                    },
                    Some(hit),
                )
            }
            JobSpec::OptCompare {
                mix,
                scale,
                m,
                seeds,
            } => {
                let cfg = scale.config(*mix);
                let (clean, hit) = cache.get_or_compute(&cfg);
                let cmp = optimal_vs_random_with(&cfg, *m, seeds, &clean);
                (
                    JobOutput::Opt {
                        q_optimal: cmp.q_optimal,
                        q_random: cmp.q_random,
                        improvement: cmp.improvement,
                    },
                    Some(hit),
                )
            }
            JobSpec::RegressionMix { mix, scale, nodes } => {
                let mut base = scale.config(Mix::Mix1);
                base.nodes = *nodes;
                let mesh = base.mesh();
                let manager = base.manager.resolve(mesh);
                let placements = regression_placements(mesh, manager);
                // One baseline per mix; a job is a "hit" only if every one
                // of its baselines was served from the cache.
                let mut used: Option<bool> = None;
                let samples = regression_dataset_with(&base, &[*mix], &placements, |cfg| {
                    let (clean, hit) = cache.get_or_compute(cfg);
                    used = Some(used.unwrap_or(true) && hit);
                    clean
                });
                (JobOutput::Samples(samples), used)
            }
            _ => (self.execute(), None),
        }
    }
}

fn seed_tag(seeds: &[u64]) -> String {
    let mut s = String::new();
    for (i, seed) in seeds.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&seed.to_string());
    }
    s
}

/// The typed result of a [`JobSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// A single infection rate (Fig. 3 / Fig. 4 points).
    Rate(f64),
    /// One sweep point (Fig. 5 / Fig. 6): duty, measured infection, Q and
    /// the per-app performance changes in application order.
    Sweep {
        /// Trojan duty cycle.
        duty: f64,
        /// Measured infection rate.
        infection: f64,
        /// Attack effect Q.
        q: f64,
        /// Per-app performance change Θ'/Θ, in `outcome.changes` order.
        changes: Vec<f64>,
    },
    /// Section V-C comparison.
    Opt {
        /// Q with the optimized placement.
        q_optimal: f64,
        /// Seed-averaged Q with random placements.
        q_random: f64,
        /// `q_optimal / q_random - 1`.
        improvement: f64,
    },
    /// Eq. 9 regression samples (one mix, canonical placements, in order).
    Samples(Vec<AttackSample>),
    /// One resilience-sweep cell: attack effect against the equally-faulty
    /// baseline plus the manager's degradation tallies.
    Resilience {
        /// Measured infection rate of the attacked arm.
        infection: f64,
        /// Attack effect Q (1.0 = no effect beyond the faults).
        q: f64,
        /// Victim θ sum in the attacked arm.
        victim_theta: f64,
        /// Victim θ sum in the faulty-but-clean baseline arm.
        baseline_victim_theta: f64,
        /// Hold-last-grant events (silent cores bridged by the manager).
        timeouts: u64,
        /// Checksum-rejected requests in the measurement window.
        rejects: u64,
        /// Requests clamped into the plausibility envelope.
        clamps: u64,
        /// Ground-truth faults the plan applied during the attacked arm.
        faults_applied: u64,
    },
    /// One conformance batch: how many scenarios agreed, plus the shrunk
    /// replayable spec of every divergence (empty on a clean batch).
    Conformance {
        /// Scenarios that ran clean.
        passed: u64,
        /// Shrunk `Scenario` spec strings of every divergence found.
        failures: Vec<String>,
    },
}

impl JobOutput {
    /// Encodes the output as a JSON value (the cache file body).
    #[must_use]
    pub fn to_json(&self) -> Value {
        match self {
            JobOutput::Rate(x) => Value::obj(vec![
                ("kind", Value::Str("rate".into())),
                ("value", Value::Num(*x)),
            ]),
            JobOutput::Sweep {
                duty,
                infection,
                q,
                changes,
            } => Value::obj(vec![
                ("kind", Value::Str("sweep".into())),
                ("duty", Value::Num(*duty)),
                ("infection", Value::Num(*infection)),
                ("q", Value::Num(*q)),
                (
                    "changes",
                    Value::Arr(changes.iter().map(|c| Value::Num(*c)).collect()),
                ),
            ]),
            JobOutput::Opt {
                q_optimal,
                q_random,
                improvement,
            } => Value::obj(vec![
                ("kind", Value::Str("opt".into())),
                ("q_optimal", Value::Num(*q_optimal)),
                ("q_random", Value::Num(*q_random)),
                ("improvement", Value::Num(*improvement)),
            ]),
            JobOutput::Resilience {
                infection,
                q,
                victim_theta,
                baseline_victim_theta,
                timeouts,
                rejects,
                clamps,
                faults_applied,
            } => Value::obj(vec![
                ("kind", Value::Str("resil".into())),
                ("infection", Value::Num(*infection)),
                ("q", Value::Num(*q)),
                ("victim_theta", Value::Num(*victim_theta)),
                ("baseline_victim_theta", Value::Num(*baseline_victim_theta)),
                ("timeouts", Value::Int(*timeouts as i64)),
                ("rejects", Value::Int(*rejects as i64)),
                ("clamps", Value::Int(*clamps as i64)),
                ("faults_applied", Value::Int(*faults_applied as i64)),
            ]),
            JobOutput::Conformance { passed, failures } => Value::obj(vec![
                ("kind", Value::Str("conf".into())),
                ("passed", Value::Int(*passed as i64)),
                (
                    "failures",
                    Value::Arr(failures.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ]),
            JobOutput::Samples(samples) => Value::obj(vec![
                ("kind", Value::Str("samples".into())),
                (
                    "rows",
                    Value::Arr(
                        samples
                            .iter()
                            .map(|s| {
                                Value::Arr(vec![
                                    Value::Num(s.rho),
                                    Value::Num(s.eta),
                                    Value::Num(s.m),
                                    Value::Num(s.phi_victims),
                                    Value::Num(s.phi_attackers),
                                    Value::Num(s.q),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Decodes a cache file body. `None` on any structural mismatch (the
    /// cache then treats the entry as a miss).
    #[must_use]
    pub fn from_json(v: &Value) -> Option<JobOutput> {
        match v.get("kind")?.as_str()? {
            "rate" => Some(JobOutput::Rate(v.get("value")?.as_f64()?)),
            "sweep" => {
                let changes = v
                    .get("changes")?
                    .as_arr()?
                    .iter()
                    .map(Value::as_f64)
                    .collect::<Option<Vec<f64>>>()?;
                Some(JobOutput::Sweep {
                    duty: v.get("duty")?.as_f64()?,
                    infection: v.get("infection")?.as_f64()?,
                    q: v.get("q")?.as_f64()?,
                    changes,
                })
            }
            "opt" => Some(JobOutput::Opt {
                q_optimal: v.get("q_optimal")?.as_f64()?,
                q_random: v.get("q_random")?.as_f64()?,
                improvement: v.get("improvement")?.as_f64()?,
            }),
            "resil" => Some(JobOutput::Resilience {
                infection: v.get("infection")?.as_f64()?,
                q: v.get("q")?.as_f64()?,
                victim_theta: v.get("victim_theta")?.as_f64()?,
                baseline_victim_theta: v.get("baseline_victim_theta")?.as_f64()?,
                timeouts: u64::try_from(v.get("timeouts")?.as_i64()?).ok()?,
                rejects: u64::try_from(v.get("rejects")?.as_i64()?).ok()?,
                clamps: u64::try_from(v.get("clamps")?.as_i64()?).ok()?,
                faults_applied: u64::try_from(v.get("faults_applied")?.as_i64()?).ok()?,
            }),
            "conf" => {
                let failures = v
                    .get("failures")?
                    .as_arr()?
                    .iter()
                    .map(|s| s.as_str().map(str::to_string))
                    .collect::<Option<Vec<String>>>()?;
                Some(JobOutput::Conformance {
                    passed: u64::try_from(v.get("passed")?.as_i64()?).ok()?,
                    failures,
                })
            }
            "samples" => {
                let rows = v.get("rows")?.as_arr()?;
                let mut samples = Vec::with_capacity(rows.len());
                for row in rows {
                    let cols = row.as_arr()?;
                    if cols.len() != 6 {
                        return None;
                    }
                    samples.push(AttackSample {
                        rho: cols[0].as_f64()?,
                        eta: cols[1].as_f64()?,
                        m: cols[2].as_f64()?,
                        phi_victims: cols[3].as_f64()?,
                        phi_attackers: cols[4].as_f64()?,
                        q: cols[5].as_f64()?,
                    });
                }
                Some(JobOutput::Samples(samples))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_encode_every_parameter() {
        let base = JobSpec::Fig3Point {
            nodes: 64,
            corner: false,
            ht_count: 10,
            seeds: vec![0, 1],
        };
        assert_eq!(base.id(), "fig3-n64-center-ht10-s0.1");
        let variants = [
            JobSpec::Fig3Point {
                nodes: 128,
                corner: false,
                ht_count: 10,
                seeds: vec![0, 1],
            },
            JobSpec::Fig3Point {
                nodes: 64,
                corner: true,
                ht_count: 10,
                seeds: vec![0, 1],
            },
            JobSpec::Fig3Point {
                nodes: 64,
                corner: false,
                ht_count: 11,
                seeds: vec![0, 1],
            },
            JobSpec::Fig3Point {
                nodes: 64,
                corner: false,
                ht_count: 10,
                seeds: vec![0, 2],
            },
        ];
        for v in &variants {
            assert_ne!(v.id(), base.id(), "{v:?}");
        }
    }

    #[test]
    fn resilience_id_encodes_every_parameter() {
        #[allow(clippy::fn_params_excessive_bools)]
        fn resil(
            mix: Mix,
            scale: CampaignScale,
            allocator: AllocatorKind,
            drop_ppm: u32,
            fault_seed: u64,
            hardened: bool,
            duty_tenths: u32,
        ) -> JobSpec {
            JobSpec::Resilience {
                mix,
                scale,
                allocator,
                drop_ppm,
                fault_seed,
                hardened,
                duty_tenths,
            }
        }
        use AllocatorKind::{Greedy, Market};
        use CampaignScale::{Small, Tiny};
        let base = resil(Mix::Mix1, Tiny, Greedy, 10_000, 7, false, 9);
        assert_eq!(base.id(), "resil-mix-1-tiny-greedy-p10000-f7-soft-d9");
        let mut ids = std::collections::BTreeSet::new();
        ids.insert(base.id());
        for variant in [
            resil(Mix::Mix2, Tiny, Greedy, 10_000, 7, false, 9),
            resil(Mix::Mix1, Small, Greedy, 10_000, 7, false, 9),
            resil(Mix::Mix1, Tiny, Market, 10_000, 7, false, 9),
            resil(Mix::Mix1, Tiny, Greedy, 20_000, 7, false, 9),
            resil(Mix::Mix1, Tiny, Greedy, 10_000, 8, false, 9),
            resil(Mix::Mix1, Tiny, Greedy, 10_000, 7, true, 9),
            resil(Mix::Mix1, Tiny, Greedy, 10_000, 7, false, 0),
        ] {
            assert!(ids.insert(variant.id()), "id collision: {}", variant.id());
        }
    }

    #[test]
    fn output_json_roundtrip() {
        let outputs = [
            JobOutput::Rate(0.1234),
            JobOutput::Sweep {
                duty: 0.3,
                infection: 0.28,
                q: 2.5,
                changes: vec![1.2, 0.6],
            },
            JobOutput::Opt {
                q_optimal: 3.0,
                q_random: 2.0,
                improvement: 0.5,
            },
            JobOutput::Samples(vec![AttackSample {
                rho: 1.0,
                eta: 2.0,
                m: 8.0,
                phi_victims: 0.4,
                phi_attackers: 0.6,
                q: 3.3,
            }]),
            JobOutput::Resilience {
                infection: 0.25,
                q: 1.05,
                victim_theta: 3.1,
                baseline_victim_theta: 3.2,
                timeouts: 12,
                rejects: 3,
                clamps: 0,
                faults_applied: 450,
            },
            JobOutput::Conformance {
                passed: 199,
                failures: vec![
                    "mesh=2x2;routing=xy;cycles=10;rate=100;pr=0;seed=0x1;trojans=;duty=0;\
                     manager=0;fseed=0x0;link=0@16;stall=0@16;flip=0;drop=0"
                        .into(),
                ],
            },
            JobOutput::Conformance {
                passed: 200,
                failures: vec![],
            },
        ];
        for out in &outputs {
            let text = out.to_json().render();
            let back = JobOutput::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, out, "{text}");
        }
    }

    #[test]
    fn conformance_id_encodes_every_parameter() {
        let base = JobSpec::Conformance {
            scenarios: 100,
            seed: 0x5EED,
        };
        assert_eq!(base.id(), "conf-n100-s5eed");
        assert_ne!(
            JobSpec::Conformance {
                scenarios: 200,
                seed: 0x5EED
            }
            .id(),
            base.id()
        );
        assert_ne!(
            JobSpec::Conformance {
                scenarios: 100,
                seed: 0x5EEE
            }
            .id(),
            base.id()
        );
    }

    #[test]
    fn conformance_job_runs_a_clean_batch() {
        let spec = JobSpec::Conformance {
            scenarios: 2,
            seed: 0xC0DE,
        };
        match spec.execute() {
            JobOutput::Conformance { passed, failures } => {
                assert_eq!(passed, 2, "failures: {failures:?}");
                assert!(failures.is_empty(), "failures: {failures:?}");
            }
            other => panic!("wrong output variant: {other:?}"),
        }
    }

    #[test]
    fn fig3_job_matches_driver() {
        let spec = JobSpec::Fig3Point {
            nodes: 16,
            corner: true,
            ht_count: 4,
            seeds: vec![0, 1],
        };
        let direct = fig3_point(16, ManagerLocation::Corner, 4, &[0, 1]);
        assert_eq!(spec.execute(), JobOutput::Rate(direct));
    }
}
