//! Crash-consistency tests for the harness's durable-write machinery.
//!
//! ALICE-style discipline: every durable artefact of a campaign — result
//! cache entries, baseline entries, journal records, emitted artefacts —
//! must survive an injected filesystem fault (ENOSPC, torn short write,
//! failed rename) at *any* operation index in the **old state or the new
//! state, never a torn one**. Property tests drive [`FaultyFs`] over each
//! write path; a two-process test exercises the baseline-cache store race
//! the commit protocol exists to fix; a fixture test locks the v1-journal
//! replay path so pre-framing journals keep resuming.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use proptest::prelude::*;

use htpb_core::Mix;
use htpb_harness::baseline::report_to_json;
use htpb_harness::json::Value;
use htpb_harness::{
    commit_file, std_fs, BaselineCache, Campaign, CampaignScale, FaultyFs, Fs, FsFault, JobOutput,
    JobSpec, Journal, ResultCache, RunOptions,
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htpb-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fault_kind(kind: usize, keep: usize) -> FsFault {
    match kind {
        0 => FsFault::Enospc,
        1 => FsFault::ShortWrite { keep },
        _ => FsFault::FailRename,
    }
}

fn faulty(op: u64, fault: FsFault) -> Arc<dyn Fs> {
    Arc::new(FaultyFs::new(std_fs(), vec![(op, fault)]))
}

fn spec() -> JobSpec {
    JobSpec::Fig3Point {
        nodes: 16,
        corner: false,
        ht_count: 2,
        seeds: vec![0],
    }
}

/// No `*.tmp.*` litter may survive a failed commit.
fn tmp_litter(dir: &Path) -> Vec<String> {
    fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

#[test]
fn commit_file_is_old_or_new_under_every_fault_point() {
    // A commit_file is two mutating ops (temp write, rename); probe both,
    // plus an index past the end (no fault) as a control.
    for op in 0..3u64 {
        for kind in 0..3usize {
            for keep in [0usize, 1, 7] {
                let dir = tmpdir(&format!("commit-{op}-{kind}-{keep}"));
                let target = dir.join("state.json");
                commit_file(std_fs().as_ref(), &target, b"old state").unwrap();
                let fs_in = faulty(op, fault_kind(kind, keep));
                let result = commit_file(fs_in.as_ref(), &target, b"new state");
                let bytes = fs::read(&target).unwrap();
                if result.is_ok() {
                    assert_eq!(bytes, b"new state");
                } else {
                    assert_eq!(bytes, b"old state", "fault {kind}@op{op} tore the target");
                }
                assert_eq!(tmp_litter(&dir), Vec::<String>::new());
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A result-cache store interrupted by any single filesystem fault
    /// leaves the entry loadable as the old output or the new output —
    /// never a torn file, never checksum-valid garbage.
    #[test]
    fn cache_store_is_old_or_new_under_any_fault(
        op in 0u64..6,
        kind in 0usize..3,
        keep in 0usize..96,
    ) {
        let dir = tmpdir(&format!("cache-{op}-{kind}-{keep}"));
        let spec = spec();
        let old = JobOutput::Rate(0.25);
        let new = JobOutput::Rate(0.75);

        let clean = ResultCache::open_with_fs(dir.join("clean"), std_fs()).unwrap();
        clean.store(&spec, &old).unwrap();
        let old_bytes = fs::read(clean.entry_path(&spec)).unwrap();
        clean.store(&spec, &new).unwrap();
        let new_bytes = fs::read(clean.entry_path(&spec)).unwrap();

        let cache_dir = dir.join("cache");
        let seeded = ResultCache::open_with_fs(&cache_dir, std_fs()).unwrap();
        seeded.store(&spec, &old).unwrap();
        let injected = ResultCache::open_with_fs(&cache_dir, faulty(op, fault_kind(kind, keep)));
        if let Ok(cache) = injected {
            let _ = cache.store(&spec, &new);
        }

        let survivor = ResultCache::open_with_fs(&cache_dir, std_fs()).unwrap();
        let entry = fs::read(survivor.entry_path(&spec)).unwrap();
        prop_assert!(
            entry == old_bytes || entry == new_bytes,
            "entry bytes are neither the old nor the new committed state"
        );
        let loaded = survivor.load(&spec);
        prop_assert!(loaded == Some(old) || loaded == Some(new));
        prop_assert_eq!(tmp_litter(&cache_dir), Vec::<String>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A journal append interrupted by any single fault loses at most the
    /// faulted record (plus the one merged into its torn tail); everything
    /// else replays, in order, and the file never becomes unreadable.
    #[test]
    fn journal_append_is_prefix_safe_under_any_fault(
        op in 0u64..9,
        kind in 0usize..3,
        keep in 0usize..48,
    ) {
        let dir = tmpdir(&format!("journal-{op}-{kind}-{keep}"));
        let path = dir.join("journal.jsonl");
        let total = 6i64;
        // Op 0 is the open()'s create-touch append; records follow. A
        // fault there fails the open itself — the journal must then be
        // absent or empty, and nothing else is asserted.
        match Journal::open_with_fs(&path, faulty(op, fault_kind(kind, keep))) {
            Ok(journal) => {
                for i in 0..total {
                    journal.record("probe", vec![("i", Value::Int(i))]);
                }
            }
            Err(_) => {
                let (events, corrupt) =
                    Journal::read_events_stats(&path).unwrap_or((Vec::new(), 0));
                prop_assert_eq!(corrupt, 0);
                prop_assert!(events.is_empty());
                let _ = fs::remove_dir_all(&dir);
                return Ok(());
            }
        }
        let (events, corrupt) = Journal::read_events_stats(&path).unwrap_or((Vec::new(), 0));
        prop_assert!(corrupt <= 1, "one fault tore {corrupt} records");
        let probes: Vec<i64> = events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("probe"))
            .filter_map(|e| e.get("i").and_then(Value::as_i64))
            .collect();
        prop_assert!(probes.len() as i64 >= total - 2);
        prop_assert!(probes.windows(2).all(|w| w[0] < w[1]), "replay out of order");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn artefact_emission_is_old_or_new_under_every_fault_point() {
    // Campaign::start performs the journal touch + run_start appends
    // (ops 0-1); each emit_artefact is a temp write + rename + an
    // artefact-digest append. Sweep a fault across all of them.
    for op in 0..8u64 {
        for kind in 0..3usize {
            let dir = tmpdir(&format!("emit-{op}-{kind}"));
            let opts = RunOptions::sequential();
            let started = Campaign::start(
                "chaos_emit",
                &dir,
                &[],
                &opts,
                faulty(op, fault_kind(kind, 3)),
                vec![],
            );
            if let Ok(campaign) = started {
                let _ = campaign.emit_artefact("series.tsv", b"x\ty\n0\t0.1\n");
                let _ = campaign.emit_artefact("series.tsv", b"x\ty\n0\t0.2\n");
                campaign.finish(true, vec![]);
            }
            match fs::read(dir.join("series.tsv")) {
                Ok(bytes) => assert!(
                    bytes == b"x\ty\n0\t0.1\n" || bytes == b"x\ty\n0\t0.2\n",
                    "fault {kind}@op{op} left a torn artefact: {bytes:?}"
                ),
                Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            }
            let (_, corrupt) =
                Journal::read_events_stats(&dir.join("journal.jsonl")).unwrap_or((Vec::new(), 0));
            assert!(
                corrupt <= 1,
                "fault {kind}@op{op}: {corrupt} corrupt records"
            );
            assert_eq!(tmp_litter(&dir), Vec::<String>::new());
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// `--metrics` makes `metrics.prom` a first-class artefact: a fault at any
/// operation index of [`Campaign::emit_metrics`] — journal touch,
/// `run_start` append, temp write, rename, digest append — leaves the old
/// exposition or the new one on disk, never a torn file.
///
/// The probe counter is this binary's only `Class::Sim` series (the test
/// deliberately leaves the global enable flag off so no simulator absorbs
/// metrics concurrently), which makes both expositions deterministic.
#[test]
fn metrics_prom_commit_is_old_or_new_under_every_fault_point() {
    let probe = htpb_obs::global().counter(
        "htpb_test_crash_probe_total",
        "crash-safety probe",
        htpb_obs::Class::Sim,
    );
    for op in 0..8u64 {
        for kind in 0..3usize {
            let dir = tmpdir(&format!("metrics-{op}-{kind}"));
            let opts = RunOptions::sequential();
            // Epoch 1 commits the "old" exposition on a healthy filesystem.
            let clean =
                Campaign::start("metrics_emit", &dir, &[], &opts, std_fs(), vec![]).unwrap();
            let old = htpb_harness::obs::prom_text();
            clean.emit_metrics().unwrap();
            clean.finish(true, vec![]);
            // Advance the registry so the "new" exposition differs, then
            // re-emit with a fault injected somewhere in the commit path.
            probe.inc();
            let new = htpb_harness::obs::prom_text();
            assert_ne!(old, new, "probe increment must change the exposition");
            if let Ok(campaign) = Campaign::start(
                "metrics_emit",
                &dir,
                &[],
                &opts,
                faulty(op, fault_kind(kind, 9)),
                vec![],
            ) {
                let _ = campaign.emit_metrics();
                campaign.finish(true, vec![]);
            }
            let bytes = fs::read(dir.join("metrics.prom")).unwrap();
            assert!(
                bytes == old.as_bytes() || bytes == new.as_bytes(),
                "fault {kind}@op{op} tore metrics.prom"
            );
            assert_eq!(tmp_litter(&dir), Vec::<String>::new());
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn baseline_store_under_faults_converges_on_retry() {
    let cfg = CampaignScale::Tiny.config(Mix::Mix1);
    let reference = {
        let (report, _) = BaselineCache::in_memory().get_or_compute(&cfg);
        report_to_json(&report).render()
    };
    // The store is one commit_file: temp write (op 0) then rename (op 1).
    for op in 0..2u64 {
        for kind in 0..3usize {
            let dir = tmpdir(&format!("baseline-{op}-{kind}"));
            let injected = BaselineCache::with_dir_fs(&dir, faulty(op, fault_kind(kind, 5)));
            let (report, hit) = injected.get_or_compute(&cfg);
            assert!(!hit, "cold cache must compute");
            assert_eq!(report_to_json(&report).render(), reference);
            // Whatever the fault left on disk, a fresh cache either loads
            // the committed entry or silently recomputes the same report.
            let recovered = BaselineCache::with_dir(&dir);
            let (report, _) = recovered.get_or_compute(&cfg);
            assert_eq!(
                report_to_json(&report).render(),
                reference,
                "fault {kind}@op{op} poisoned the baseline entry"
            );
            assert_eq!(tmp_litter(&dir), Vec::<String>::new());
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Two processes computing and storing the same baseline entry must both
/// succeed and leave a complete, loadable file — the unique-temp-name
/// commit protocol makes the concurrent renames safe (last writer wins
/// with identical bytes). The test re-invokes its own binary as the two
/// racing processes.
#[test]
fn baseline_cache_survives_a_two_process_store_race() {
    const ENV_DIR: &str = "HTPB_BASELINE_RACE_DIR";
    let cfg = CampaignScale::Tiny.config(Mix::Mix1);
    if let Ok(dir) = std::env::var(ENV_DIR) {
        // Child mode: compute + store against the shared directory.
        let cache = BaselineCache::with_dir(&dir);
        let _ = cache.get_or_compute(&cfg);
        return;
    }
    let dir = tmpdir("race");
    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = (0..2)
        .map(|_| {
            Command::new(&exe)
                .args([
                    "--exact",
                    "baseline_cache_survives_a_two_process_store_race",
                    "--test-threads=1",
                ])
                .env(ENV_DIR, &dir)
                .spawn()
                .expect("spawn racing child")
        })
        .collect();
    for mut child in children {
        assert!(child.wait().unwrap().success(), "racing child failed");
    }
    // The racing stores must have left a complete committed entry...
    let cache = BaselineCache::with_dir(&dir);
    let (report, hit) = cache.get_or_compute(&cfg);
    assert!(hit, "the raced entry must load from disk");
    // ...with the canonical deterministic content.
    let (expected, _) = BaselineCache::in_memory().get_or_compute(&cfg);
    assert_eq!(
        report_to_json(&report).render(),
        report_to_json(&expected).render()
    );
    assert_eq!(tmp_litter(&dir), Vec::<String>::new());
    let _ = fs::remove_dir_all(&dir);
}

/// Journals written before the v2 framing (bare JSONL, `job` events, no
/// epochs) must keep replaying: completed jobs are recognised, nothing is
/// reported interrupted, and a reopened journal continues at epoch 2 with
/// framed records coexisting with the v1 lines.
#[test]
fn v1_journal_fixture_replays_and_resumes() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal_v1.jsonl");
    let (events, corrupt) = Journal::read_events_stats(&fixture).unwrap();
    assert_eq!(corrupt, 0, "fixture must parse cleanly");
    assert_eq!(events.len(), 6);

    let completed = Journal::completed_job_ids(&fixture).unwrap();
    assert!(completed.iter().any(|id| id == "fig3-n16-center-m2-s8"));
    assert!(completed.iter().any(|id| id == "fig3-n16-corner-m2-s8"));
    assert!(
        !completed.iter().any(|id| id == "fig3-n0-center-m2-s8"),
        "a failed v1 job must not count as completed"
    );
    assert_eq!(
        Journal::interrupted_job_ids(&fixture).unwrap(),
        Vec::<String>::new()
    );

    // Resume on top of the v1 history: epoch counts the v1 run, new
    // records are framed, old ones still parse.
    let dir = tmpdir("v1-resume");
    let path = dir.join("journal.jsonl");
    fs::copy(&fixture, &path).unwrap();
    let journal = Journal::open(&path).unwrap();
    assert_eq!(journal.epoch(), 2);
    journal.record("probe", vec![("i", Value::Int(7))]);
    let (events, corrupt) = Journal::read_events_stats(&path).unwrap();
    assert_eq!(corrupt, 0);
    assert_eq!(events.len(), 7);
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.lines().last().unwrap().starts_with("v2|"));
    assert_eq!(Journal::completed_job_ids(&path).unwrap().len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

/// The durable-write choke point, enforced by the real analyzer instead of
/// a substring grep: outside `fs.rs`, no production code in this crate may
/// call the raw creating/renaming std APIs — everything routes through
/// `commit_file()`/`commit_append()`. The token-level engine ignores
/// strings, comments and `#[cfg(test)]` modules, so the old grep's
/// false-positive/false-negative classes (names in doc comments, patterns
/// split across lines) are gone. The workspace-wide sweep lives in
/// `crates/lint/tests/workspace_clean.rs`; this test pins the contract
/// where the crash-safety machinery is defined.
#[test]
fn choke_point_enforced() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = htpb_lint::analyze_workspace(&root).expect("scan workspace");
    let breaches: Vec<String> = report
        .violations
        .iter()
        .filter(|v| v.rule == "fs/choke-point" && v.file.starts_with("crates/harness/"))
        .map(htpb_lint::Violation::render)
        .collect();
    assert!(
        breaches.is_empty(),
        "raw durable-write APIs outside fs.rs:\n{}",
        breaches.join("\n")
    );
    // The choke point itself must have been scanned (and exempted), or the
    // rule is not actually guarding anything.
    assert!(
        report.files_scanned > 0
            && std::fs::metadata(root.join("crates/harness/src/fs.rs")).is_ok(),
        "walker missed the choke-point file"
    );
}
