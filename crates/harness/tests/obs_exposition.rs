//! Exposition-path integration tests for the `--metrics` layer.
//!
//! Three contracts are locked here:
//!
//! 1. the JSON metrics snapshot a [`Campaign`] embeds in its `run_end`
//!    record round-trips through the journal — `Journal::read_events`
//!    re-parses it to exactly the values the registry held at finish time;
//! 2. `metrics.prom` (emitted via [`Campaign::emit_metrics`]) contains
//!    only [`Sim`](htpb_obs::Class::Sim) series — no Timing-class pool
//!    metric ever reaches the byte-deterministic artefact — and verifies
//!    against its journalled digest like any other artefact;
//! 3. the worker pool's instrumentation counts real jobs: running a job
//!    list with metrics enabled moves the `htpb_harness_*` counters by
//!    exactly the pool's actual activity, and the queue-depth gauge drains
//!    back to zero.
//!
//! All instruments touched here use test-unique names (or deltas of the
//! shared pool counters, which no other test in this binary drives), so the
//! tests stay correct under the default parallel test runner.

use std::fs;
use std::path::PathBuf;

use htpb_harness::json::Value;
use htpb_harness::{run_jobs, std_fs, verify_artefacts, Campaign, JobSpec, Journal, RunOptions};
use htpb_obs::{global, Class};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htpb-obs-expo-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Finds one series object by name in a parsed JSON snapshot.
fn find_series<'a>(metrics: &'a Value, name: &str) -> Option<&'a Value> {
    metrics
        .get("series")
        .and_then(Value::as_arr)?
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
}

#[test]
fn run_end_metrics_snapshot_round_trips_through_journal() {
    htpb_obs::set_enabled(true);
    // Test-unique instruments covering all three kinds and both classes.
    let counter = global().counter(
        "htpb_test_expo_probe_total",
        "round-trip probe counter",
        Class::Sim,
    );
    counter.add(7);
    let gauge = global().gauge(
        "htpb_test_expo_depth",
        "round-trip probe gauge",
        Class::Timing,
    );
    gauge.set(-3);
    let hist = global().histogram(
        "htpb_test_expo_lat",
        &[1, 4, 16],
        "round-trip probe histogram",
        Class::Sim,
    );
    hist.observe(0);
    hist.observe(3);
    hist.observe(100);

    let dir = tmpdir("roundtrip");
    let opts = RunOptions::sequential();
    let campaign = Campaign::start("obs_expo", &dir, &[], &opts, std_fs(), vec![]).unwrap();
    campaign.finish(true, vec![]);

    let events = Journal::read_events(&dir.join("journal.jsonl")).unwrap();
    let run_end = events
        .iter()
        .rev()
        .find(|e| e.get("event").and_then(Value::as_str) == Some("run_end"))
        .expect("run_end record");
    let metrics = run_end.get("metrics").expect("embedded metrics snapshot");

    let c = find_series(metrics, "htpb_test_expo_probe_total").expect("probe counter");
    assert_eq!(c.get("class").and_then(Value::as_str), Some("sim"));
    assert_eq!(c.get("kind").and_then(Value::as_str), Some("counter"));
    assert_eq!(c.get("value").and_then(Value::as_i64), Some(7));
    assert_eq!(counter.get(), 7, "journal and registry agree");

    let g = find_series(metrics, "htpb_test_expo_depth").expect("probe gauge");
    assert_eq!(g.get("class").and_then(Value::as_str), Some("timing"));
    assert_eq!(g.get("value").and_then(Value::as_i64), Some(-3));

    let h = find_series(metrics, "htpb_test_expo_lat").expect("probe histogram");
    let ints = |key: &str| -> Vec<i64> {
        h.get(key)
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect()
    };
    assert_eq!(ints("bounds"), vec![1, 4, 16]);
    assert_eq!(ints("counts"), vec![1, 1, 0, 1]);
    assert_eq!(h.get("sum").and_then(Value::as_i64), Some(103));
    let snap = hist.snapshot();
    assert_eq!(snap.sum, 103, "journal and registry agree on the histogram");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metrics_prom_artefact_is_sim_only_and_digest_verified() {
    htpb_obs::set_enabled(true);
    let probe = global().counter(
        "htpb_test_expo_prom_total",
        "prom artefact probe",
        Class::Sim,
    );
    probe.add(42);
    // The pool metrics exist (Timing class) the moment any test touches
    // them; force registration so the exclusion assertion is not vacuous.
    let _ = htpb_harness::obs::harness_metrics();

    let dir = tmpdir("prom");
    let opts = RunOptions::sequential();
    let campaign = Campaign::start("obs_expo", &dir, &[], &opts, std_fs(), vec![]).unwrap();
    campaign.emit_metrics().unwrap();
    campaign.finish(true, vec![]);

    let prom = fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(prom.starts_with("# HELP "), "golden grammar: HELP first");
    assert!(prom.contains("# TYPE htpb_test_expo_prom_total counter"));
    assert!(prom.contains("\nhtpb_test_expo_prom_total 42\n"));
    assert!(
        !prom.contains("htpb_harness_"),
        "Timing-class pool metrics leaked into metrics.prom:\n{prom}"
    );
    // The artefact is digest-journalled like every other output.
    let report = verify_artefacts(&dir).unwrap();
    assert!(report.ok(), "{:?}", report.mismatches);
    assert_eq!(report.verified, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pool_instrumentation_counts_real_jobs_and_drains_queue_depth() {
    htpb_obs::set_enabled(true);
    let m = htpb_harness::obs::harness_metrics();
    let jobs_before = m.jobs_total.get();
    let misses_before = m.cache_misses_total.get();
    let observed_before = m.job_ms.snapshot().count();

    let jobs = vec![
        JobSpec::Fig3Point {
            nodes: 16,
            corner: false,
            ht_count: 0,
            seeds: vec![0],
        },
        JobSpec::Fig3Point {
            nodes: 16,
            corner: true,
            ht_count: 1,
            seeds: vec![0],
        },
    ];
    let reports = run_jobs(&jobs, &RunOptions::sequential(), &Journal::disabled());
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|r| r.output.is_ok()));

    assert_eq!(m.jobs_total.get() - jobs_before, 2);
    assert_eq!(
        m.cache_misses_total.get() - misses_before,
        2,
        "no cache configured, so every job is a miss"
    );
    assert_eq!(m.job_ms.snapshot().count() - observed_before, 2);
    assert_eq!(
        m.queue_depth.get(),
        0,
        "the gauge must drain back to zero when the pool finishes"
    );
}
