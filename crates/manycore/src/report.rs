use crate::app::{AppId, AppRole};
use crate::benchmark::Benchmark;

/// Measured performance of one application over a measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct AppPerformance {
    /// Application id.
    pub id: AppId,
    /// Benchmark the application runs.
    pub benchmark: Benchmark,
    /// Attacker or legitimate.
    pub role: AppRole,
    /// Number of threads (cores).
    pub threads: usize,
    /// The paper's θ_k (Definition 1): Σ over the app's cores of
    /// `IPC(j, k, f_j) · f_j`, i.e. aggregate instructions per nanosecond,
    /// averaged over the measurement window.
    pub theta: f64,
    /// Cores of this app currently starved below the lowest DVFS point.
    pub starved_cores: usize,
}

/// Performance of every application over one measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceReport {
    /// Length of the measurement window in cycles (= ns).
    pub window_cycles: u64,
    /// Per-application results, in application-id order.
    pub apps: Vec<AppPerformance>,
    /// Power-request packets from *legitimate* (victim-candidate) cores
    /// delivered to the manager during the window. Attacker-agent requests
    /// are excluded: the Trojan never modifies them, so including them
    /// would cap the observable infection rate below 1.
    pub power_requests_delivered: u64,
    /// Of those, how many were tampered with en route.
    pub power_requests_modified: u64,
    /// Hardened-manager degradation events in this window: epochs in which
    /// a previously-seen core went silent and a hold/decay request was
    /// synthesized for it. Zero unless hardening is enabled (an extension
    /// beyond the paper's trusting manager).
    pub requests_timed_out: u64,
    /// Requests rejected by checksum verification during the window.
    pub requests_rejected: u64,
    /// Requests pulled into the power model's plausibility envelope by the
    /// hardened manager during the window.
    pub requests_clamped: u64,
}

impl PerformanceReport {
    /// The infection rate over this window: the fraction of delivered power
    /// requests that a Trojan modified (Section V-B).
    #[must_use]
    pub fn infection_rate(&self) -> f64 {
        if self.power_requests_delivered == 0 {
            0.0
        } else {
            self.power_requests_modified as f64 / self.power_requests_delivered as f64
        }
    }

    /// Sum of all degradation events (timeouts + rejects + clamps) in this
    /// window — how hard the hardened manager had to work to keep budgeting
    /// sane.
    #[must_use]
    pub fn degradation_total(&self) -> u64 {
        self.requests_timed_out + self.requests_rejected + self.requests_clamped
    }

    /// Looks up one application's performance.
    #[must_use]
    pub fn app(&self, id: AppId) -> Option<&AppPerformance> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// Sum of θ over the attacker set Δ.
    #[must_use]
    pub fn attacker_theta(&self) -> f64 {
        self.apps
            .iter()
            .filter(|a| a.role == AppRole::Malicious)
            .map(|a| a.theta)
            .sum()
    }

    /// Sum of θ over the victim set Γ.
    #[must_use]
    pub fn victim_theta(&self) -> f64 {
        self.apps
            .iter()
            .filter(|a| a.role == AppRole::Legitimate)
            .map(|a| a.theta)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerformanceReport {
        PerformanceReport {
            window_cycles: 1000,
            apps: vec![
                AppPerformance {
                    id: AppId(0),
                    benchmark: Benchmark::Barnes,
                    role: AppRole::Malicious,
                    threads: 4,
                    theta: 6.0,
                    starved_cores: 0,
                },
                AppPerformance {
                    id: AppId(1),
                    benchmark: Benchmark::Raytrace,
                    role: AppRole::Legitimate,
                    threads: 4,
                    theta: 2.0,
                    starved_cores: 4,
                },
            ],
            power_requests_delivered: 10,
            power_requests_modified: 4,
            requests_timed_out: 0,
            requests_rejected: 0,
            requests_clamped: 0,
        }
    }

    #[test]
    fn degradation_total_sums_counters() {
        let mut r = report();
        r.requests_timed_out = 3;
        r.requests_rejected = 2;
        r.requests_clamped = 1;
        assert_eq!(r.degradation_total(), 6);
    }

    #[test]
    fn infection_rate_and_partition_sums() {
        let r = report();
        assert!((r.infection_rate() - 0.4).abs() < 1e-12);
        assert!((r.attacker_theta() - 6.0).abs() < 1e-12);
        assert!((r.victim_theta() - 2.0).abs() < 1e-12);
        assert!(r.app(AppId(1)).is_some());
        assert!(r.app(AppId(9)).is_none());
    }

    #[test]
    fn empty_window_infection_rate_is_zero() {
        let mut r = report();
        r.power_requests_delivered = 0;
        assert_eq!(r.infection_rate(), 0.0);
    }
}
