use htpb_noc::NodeId;
use htpb_power::{FrequencyLevel, PowerModel};

use crate::app::{AppId, AppRole};
use crate::benchmark::BenchmarkProfile;
use crate::cache::{AddressStream, CacheConfig, SetAssocCache};

/// Memory references issued per 1000 retired instructions in detailed-cache
/// mode (loads + stores reaching the L1 data cache).
pub(crate) const REFS_PER_KINSTR: f64 = 300.0;

/// One tile of the chip: a core (with its private L1 and shared-L2 slice)
/// plus its network interface state.
///
/// Tiles either run one application thread or sit idle (unassigned tiles
/// and the global-manager tile do not execute workload instructions).
#[derive(Debug, Clone)]
pub struct Tile {
    node: NodeId,
    assignment: Option<Assignment>,
    level: FrequencyLevel,
    /// Set when the last grant could not sustain even the lowest DVFS level.
    starved: bool,
    /// Lifetime retired instructions.
    retired_total: f64,
    /// Instructions retired since the measurement window began.
    retired_window: f64,
    /// Fractional accumulator of pending shared-L2 accesses.
    l2_credit: f64,
    /// Detailed L1 + reference stream (None in rate-based mode).
    detailed: Option<DetailedL1>,
}

/// Detailed per-tile memory state: a real L1 data cache fed by a synthetic
/// reference stream (enabled by `SystemConfig::detailed_caches`).
#[derive(Debug, Clone)]
struct DetailedL1 {
    cache: SetAssocCache,
    stream: AddressStream,
    ref_credit: f64,
    /// Outstanding L2/memory requests (MSHR occupancy).
    outstanding: u32,
    /// Cycles the core spent stalled on a full MSHR.
    stall_cycles: u64,
}

/// The thread assigned to a tile.
#[derive(Debug, Clone, Copy)]
pub struct Assignment {
    /// Owning application.
    pub app: AppId,
    /// Role inherited from the application.
    pub role: AppRole,
    /// Request inflation factor inherited from the application.
    pub greed: f64,
    /// Workload profile of the benchmark.
    pub profile: BenchmarkProfile,
}

impl Tile {
    /// Creates an idle tile.
    #[must_use]
    pub fn idle(node: NodeId) -> Self {
        Tile {
            node,
            assignment: None,
            level: FrequencyLevel::MIN,
            starved: false,
            retired_total: 0.0,
            retired_window: 0.0,
            l2_credit: 0.0,
            detailed: None,
        }
    }

    /// This tile's node id (also its core id in power requests).
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Assigns an application thread to this tile.
    pub(crate) fn assign(&mut self, assignment: Assignment) {
        self.assignment = Some(assignment);
    }

    /// Switches this tile to detailed-cache mode: a real L1 data cache fed
    /// by a synthetic address stream calibrated to the benchmark's L2
    /// access rate (hot fraction = 1 − rate/refs so the emergent L1 miss
    /// rate lands near the profile's).
    pub(crate) fn enable_detailed_cache(&mut self) {
        let Some(a) = self.assignment.as_ref() else {
            return;
        };
        let miss_ratio = (a.profile.l2_accesses_per_kinstr / REFS_PER_KINSTR).clamp(0.0, 1.0);
        self.detailed = Some(DetailedL1 {
            cache: SetAssocCache::new(CacheConfig::l1_data()),
            stream: AddressStream::new(self.node.raw(), 8, 1.0 - miss_ratio, 0.25),
            ref_credit: 0.0,
            outstanding: 0,
            stall_cycles: 0,
        });
    }

    /// Whether detailed-cache mode is active.
    #[must_use]
    pub fn has_detailed_cache(&self) -> bool {
        self.detailed.is_some()
    }

    /// L1 hit rate in detailed mode (0.0 otherwise).
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        self.detailed.as_ref().map_or(0.0, |d| d.cache.hit_rate())
    }

    /// Invalidates an L1 line (directory-initiated coherence action).
    pub(crate) fn l1_invalidate(&mut self, addr: u64) {
        if let Some(d) = self.detailed.as_mut() {
            d.cache.invalidate(addr);
        }
    }

    /// Records outstanding misses entering the network (MSHR allocation).
    pub(crate) fn note_misses_sent(&mut self, n: u32) {
        if let Some(d) = self.detailed.as_mut() {
            d.outstanding += n;
        }
    }

    /// Records a returning data reply (MSHR release).
    pub(crate) fn note_reply(&mut self) {
        if let Some(d) = self.detailed.as_mut() {
            d.outstanding = d.outstanding.saturating_sub(1);
        }
    }

    /// Current MSHR occupancy (detailed mode; 0 otherwise).
    #[must_use]
    pub fn outstanding_misses(&self) -> u32 {
        self.detailed.as_ref().map_or(0, |d| d.outstanding)
    }

    /// Cycles spent stalled on a full MSHR (detailed mode).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.detailed.as_ref().map_or(0, |d| d.stall_cycles)
    }

    /// The assigned thread, if any.
    #[must_use]
    pub fn assignment(&self) -> Option<&Assignment> {
        self.assignment.as_ref()
    }

    /// Whether the tile runs a thread.
    #[must_use]
    pub fn is_assigned(&self) -> bool {
        self.assignment.is_some()
    }

    /// Current DVFS level.
    #[must_use]
    pub fn level(&self) -> FrequencyLevel {
        self.level
    }

    /// Whether the last grant could not afford even the lowest level.
    #[must_use]
    pub fn is_starved(&self) -> bool {
        self.starved
    }

    /// Lifetime retired instructions.
    #[must_use]
    pub fn retired_total(&self) -> f64 {
        self.retired_total
    }

    /// Instructions retired in the current measurement window.
    #[must_use]
    pub fn retired_window(&self) -> f64 {
        self.retired_window
    }

    /// Resets the measurement window.
    pub(crate) fn reset_window(&mut self) {
        self.retired_window = 0.0;
    }

    /// Applies a power grant: the core moves to the highest level its grant
    /// affords. A grant below the lowest operating point pins the core to
    /// the lowest level (retention floor) and marks it starved.
    pub(crate) fn apply_grant(&mut self, grant_mw: f64, model: &PowerModel) {
        match model.level_for_grant(grant_mw) {
            Some(level) => {
                self.level = level;
                self.starved = false;
            }
            None => {
                self.level = FrequencyLevel::MIN;
                self.starved = true;
            }
        }
    }

    /// The power this tile's thread honestly needs (mW): the cost of the
    /// lowest DVFS level achieving `efficiency` of its top-level throughput.
    /// Malicious threads inflate this by their greed factor (capped at the
    /// chip's peak per-core power — asking beyond peak is a giveaway).
    #[must_use]
    pub fn desired_request_mw(&self, model: &PowerModel, efficiency: f64) -> Option<f64> {
        let a = self.assignment.as_ref()?;
        let level = a.profile.desired_level(model.table(), efficiency);
        let honest = model.power_mw(level);
        let asked = match a.role {
            AppRole::Legitimate => honest,
            AppRole::Malicious => (honest * a.greed).min(model.peak_power_mw()),
        };
        Some(asked)
    }

    /// Advances the core by one nanosecond of wall-clock time, retiring
    /// instructions at the current operating point, and returns the number
    /// of whole shared-L2 accesses generated this tick.
    ///
    /// A starved core (grant below the lowest operating point) is mostly
    /// power-gated: the runtime wakes it for a `starvation_duty` fraction
    /// of the time at the lowest level so its threads keep making minimal
    /// forward progress, and it retires instructions at that duty-cycled
    /// rate.
    pub(crate) fn tick(&mut self, model: &PowerModel, starvation_duty: f64) -> u32 {
        let Some(retired) = self.retire(model, starvation_duty) else {
            return 0;
        };
        let rate = self
            .assignment
            .as_ref()
            .expect("retire() returned Some")
            .profile
            .l2_accesses_per_kinstr;
        self.l2_credit += retired * rate / 1_000.0;
        let whole = self.l2_credit.floor();
        self.l2_credit -= whole;
        whole as u32
    }

    /// Detailed-mode tick: retires instructions, then runs the tick's
    /// memory references through the real L1 and returns the misses (as
    /// `(line address, is_write)`) that must travel to their L2 home, at
    /// most `cap` per call.
    pub(crate) fn tick_detailed(
        &mut self,
        model: &PowerModel,
        starvation_duty: f64,
        cap: usize,
        mshr_limit: u32,
    ) -> Vec<(u64, bool)> {
        // A full MSHR stalls the core for the cycle: no retirement, no new
        // references. This couples core performance to real NoC and memory
        // latency.
        if let Some(d) = self.detailed.as_mut() {
            if d.outstanding >= mshr_limit {
                d.stall_cycles += 1;
                return Vec::new();
            }
        }
        let Some(retired) = self.retire(model, starvation_duty) else {
            return Vec::new();
        };
        let Some(d) = self.detailed.as_mut() else {
            return Vec::new();
        };
        d.ref_credit += retired * REFS_PER_KINSTR / 1_000.0;
        let whole = d.ref_credit.floor() as usize;
        d.ref_credit -= whole as f64;
        let mut misses = Vec::new();
        for _ in 0..whole {
            let (addr, is_write) = d.stream.next_ref();
            let result = d.cache.access(addr);
            if !result.hit && misses.len() < cap {
                misses.push((addr, is_write));
            }
        }
        misses
    }

    /// Retires one nanosecond of instructions; `None` for idle tiles.
    fn retire(&mut self, model: &PowerModel, starvation_duty: f64) -> Option<f64> {
        let a = self.assignment.as_ref()?;
        let f = model.table().freq_ghz(self.level);
        let mut retired = a.profile.throughput(f); // instructions per ns
        if self.starved {
            retired *= starvation_duty.clamp(0.0, 1.0);
        }
        self.retired_total += retired;
        self.retired_window += retired;
        Some(retired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;

    fn assigned_tile(b: Benchmark, role: AppRole, greed: f64) -> Tile {
        let mut t = Tile::idle(NodeId(3));
        t.assign(Assignment {
            app: AppId(0),
            role,
            greed,
            profile: b.profile(),
        });
        t
    }

    #[test]
    fn idle_tile_retires_nothing() {
        let mut t = Tile::idle(NodeId(0));
        let model = PowerModel::default_45nm();
        assert_eq!(t.tick(&model, 1.0), 0);
        assert_eq!(t.retired_total(), 0.0);
        assert!(!t.is_assigned());
        assert!(t.desired_request_mw(&model, 0.95).is_none());
    }

    #[test]
    fn tick_retires_more_at_higher_level() {
        let model = PowerModel::default_45nm();
        let mut slow = assigned_tile(Benchmark::Blackscholes, AppRole::Legitimate, 1.0);
        let mut fast = assigned_tile(Benchmark::Blackscholes, AppRole::Legitimate, 1.0);
        fast.apply_grant(model.peak_power_mw(), &model);
        for _ in 0..100 {
            slow.tick(&model, 1.0);
            fast.tick(&model, 1.0);
        }
        assert!(fast.retired_total() > slow.retired_total() * 3.0);
    }

    #[test]
    fn starvation_pins_to_min_level() {
        let model = PowerModel::default_45nm();
        let mut t = assigned_tile(Benchmark::Vips, AppRole::Legitimate, 1.0);
        t.apply_grant(model.peak_power_mw(), &model);
        assert_eq!(t.level(), model.table().max_level());
        t.apply_grant(0.0, &model);
        assert_eq!(t.level(), FrequencyLevel::MIN);
        assert!(t.is_starved());
        t.apply_grant(model.min_power_mw() + 1.0, &model);
        assert!(!t.is_starved());
    }

    #[test]
    fn malicious_request_is_inflated_but_capped() {
        let model = PowerModel::default_45nm();
        let honest = assigned_tile(Benchmark::Blackscholes, AppRole::Legitimate, 1.0)
            .desired_request_mw(&model, 0.95)
            .unwrap();
        let greedy = assigned_tile(Benchmark::Blackscholes, AppRole::Malicious, 1.5)
            .desired_request_mw(&model, 0.95)
            .unwrap();
        assert!(greedy >= honest);
        assert!(greedy <= model.peak_power_mw() + 1e-9);
        let absurd = assigned_tile(Benchmark::Blackscholes, AppRole::Malicious, 100.0)
            .desired_request_mw(&model, 0.95)
            .unwrap();
        assert!((absurd - model.peak_power_mw()).abs() < 1e-9);
    }

    #[test]
    fn l2_accesses_accumulate_fractionally() {
        let model = PowerModel::default_45nm();
        let mut t = assigned_tile(Benchmark::Canneal, AppRole::Legitimate, 1.0);
        t.apply_grant(model.peak_power_mw(), &model);
        let mut total = 0u32;
        for _ in 0..10_000 {
            total += t.tick(&model, 1.0);
        }
        // canneal at top level: throughput(3.0) ≈ 0.76 GIPS, 34 accesses per
        // kinstr → ≈ 26 accesses per 1000 ns.
        let expected = t.retired_total() * 34.0 / 1000.0;
        assert!(
            (total as f64 - expected).abs() <= 1.0,
            "got {total}, expected ≈{expected}"
        );
    }

    #[test]
    fn starved_tile_runs_duty_cycled() {
        let model = PowerModel::default_45nm();
        let mut healthy = assigned_tile(Benchmark::Raytrace, AppRole::Legitimate, 1.0);
        let mut starved = assigned_tile(Benchmark::Raytrace, AppRole::Legitimate, 1.0);
        starved.apply_grant(0.0, &model);
        assert!(starved.is_starved());
        for _ in 0..1_000 {
            healthy.tick(&model, 0.25);
            starved.tick(&model, 0.25);
        }
        // Both sit at the lowest level, but the starved one runs at a
        // quarter of its throughput.
        let ratio = starved.retired_total() / healthy.retired_total();
        assert!((ratio - 0.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn detailed_tick_produces_bounded_l1_misses() {
        let model = PowerModel::default_45nm();
        let mut t = assigned_tile(Benchmark::Canneal, AppRole::Legitimate, 1.0);
        t.enable_detailed_cache();
        assert!(t.has_detailed_cache());
        t.apply_grant(model.peak_power_mw(), &model);
        let mut total_misses = 0usize;
        for _ in 0..5_000 {
            let misses = t.tick_detailed(&model, 1.0, 2, u32::MAX);
            assert!(misses.len() <= 2);
            total_misses += misses.len();
        }
        assert!(total_misses > 0, "no L1 misses at all");
        // The L1 absorbs the hot set: hit rate must be substantial but not
        // perfect (canneal's profile demands real L2 traffic).
        let hr = t.l1_hit_rate();
        assert!(hr > 0.5 && hr < 1.0, "hit rate {hr}");
        assert!(t.retired_total() > 0.0);
    }

    #[test]
    fn detailed_mode_requires_assignment() {
        let mut t = Tile::idle(NodeId(1));
        t.enable_detailed_cache();
        assert!(!t.has_detailed_cache());
        let model = PowerModel::default_45nm();
        assert!(t.tick_detailed(&model, 1.0, 2, u32::MAX).is_empty());
    }

    #[test]
    fn full_mshr_stalls_the_core() {
        let model = PowerModel::default_45nm();
        let mut t = assigned_tile(Benchmark::Canneal, AppRole::Legitimate, 1.0);
        t.enable_detailed_cache();
        t.note_misses_sent(8);
        let before = t.retired_total();
        let misses = t.tick_detailed(&model, 1.0, 2, 8);
        assert!(misses.is_empty());
        assert_eq!(t.retired_total(), before, "stalled core retires nothing");
        assert_eq!(t.stall_cycles(), 1);
        // A reply frees an MSHR and execution resumes.
        t.note_reply();
        assert_eq!(t.outstanding_misses(), 7);
        t.tick_detailed(&model, 1.0, 2, 8);
        assert!(t.retired_total() > before);
    }

    #[test]
    fn window_reset_only_clears_window() {
        let model = PowerModel::default_45nm();
        let mut t = assigned_tile(Benchmark::Vips, AppRole::Legitimate, 1.0);
        for _ in 0..10 {
            t.tick(&model, 1.0);
        }
        let total = t.retired_total();
        t.reset_window();
        assert_eq!(t.retired_window(), 0.0);
        assert_eq!(t.retired_total(), total);
    }
}
