use std::fmt;

/// Errors from building or running a many-core system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManycoreError {
    /// The workload needs more cores than the mesh provides (after
    /// reserving the global-manager tile).
    NotEnoughCores {
        /// Threads requested by the workload.
        requested: usize,
        /// Worker tiles available.
        available: usize,
    },
    /// The configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An underlying NoC error surfaced during construction.
    Noc(htpb_noc::NocError),
}

impl fmt::Display for ManycoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManycoreError::NotEnoughCores {
                requested,
                available,
            } => write!(
                f,
                "workload needs {requested} cores but only {available} are available"
            ),
            ManycoreError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            ManycoreError::Noc(e) => write!(f, "NoC error: {e}"),
        }
    }
}

impl std::error::Error for ManycoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManycoreError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<htpb_noc::NocError> for ManycoreError {
    fn from(e: htpb_noc::NocError) -> Self {
        ManycoreError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ManycoreError::NotEnoughCores {
            requested: 70,
            available: 63,
        };
        assert_eq!(
            e.to_string(),
            "workload needs 70 cores but only 63 are available"
        );
        assert_eq!(
            ManycoreError::InvalidConfig {
                reason: "bad epoch"
            }
            .to_string(),
            "invalid config: bad epoch"
        );
    }

    #[test]
    fn noc_errors_convert_and_chain() {
        let inner = htpb_noc::NocError::InjectionQueueFull {
            node: htpb_noc::NodeId(5),
        };
        let e: ManycoreError = inner.clone().into();
        assert!(e.to_string().contains("NoC error"));
        let src = std::error::Error::source(&e).expect("source chained");
        assert_eq!(src.to_string(), inner.to_string());
    }
}
