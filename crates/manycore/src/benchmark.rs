use htpb_power::{DvfsTable, FrequencyLevel};

/// The eleven multi-threaded benchmarks of Table II — nine from PARSEC and
/// two from SPLASH-2.
///
/// Each benchmark carries a synthetic [`BenchmarkProfile`] replacing the
/// real binaries (see DESIGN.md §4): the profiles span the compute-bound ↔
/// memory-bound axis that the paper's power-budget-sensitivity analysis
/// (Definitions 4–5, Section IV-B) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    // PARSEC
    Streamcluster,
    Swaptions,
    Ferret,
    Fluidanimate,
    Blackscholes,
    Freqmine,
    Dedup,
    Canneal,
    Vips,
    // SPLASH-2
    Barnes,
    Raytrace,
}

impl Benchmark {
    /// All benchmarks of Table II.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Blackscholes,
        Benchmark::Freqmine,
        Benchmark::Dedup,
        Benchmark::Canneal,
        Benchmark::Vips,
        Benchmark::Barnes,
        Benchmark::Raytrace,
    ];

    /// Canonical lowercase name as it appears in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Dedup => "dedup",
            Benchmark::Canneal => "canneal",
            Benchmark::Vips => "vips",
            Benchmark::Barnes => "barnes",
            Benchmark::Raytrace => "raytrace",
        }
    }

    /// Parses a benchmark from its canonical name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The benchmark's synthetic workload profile.
    #[must_use]
    pub fn profile(self) -> BenchmarkProfile {
        // cpi_compute: core cycles per instruction (frequency-scaled part).
        // mem_ns_per_instr: average memory time per instruction in ns
        //   (frequency-independent — DRAM and shared-L2 latency do not scale
        //   with the core's DVFS level).
        // Miss/message rates per 1000 retired instructions drive NoC load.
        match self {
            Benchmark::Blackscholes => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.80,
                mem_ns_per_instr: 0.020,
                l2_accesses_per_kinstr: 6.0,
                l2_miss_rate: 0.10,
            },
            Benchmark::Swaptions => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.70,
                mem_ns_per_instr: 0.030,
                l2_accesses_per_kinstr: 5.0,
                l2_miss_rate: 0.08,
            },
            Benchmark::Raytrace => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.90,
                mem_ns_per_instr: 0.045,
                l2_accesses_per_kinstr: 9.0,
                l2_miss_rate: 0.12,
            },
            Benchmark::Freqmine => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.85,
                mem_ns_per_instr: 0.080,
                l2_accesses_per_kinstr: 12.0,
                l2_miss_rate: 0.18,
            },
            Benchmark::Fluidanimate => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 1.00,
                mem_ns_per_instr: 0.100,
                l2_accesses_per_kinstr: 14.0,
                l2_miss_rate: 0.20,
            },
            Benchmark::Barnes => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 1.00,
                mem_ns_per_instr: 0.120,
                l2_accesses_per_kinstr: 16.0,
                l2_miss_rate: 0.22,
            },
            Benchmark::Vips => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.95,
                mem_ns_per_instr: 0.130,
                l2_accesses_per_kinstr: 15.0,
                l2_miss_rate: 0.25,
            },
            Benchmark::Ferret => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 0.90,
                mem_ns_per_instr: 0.150,
                l2_accesses_per_kinstr: 18.0,
                l2_miss_rate: 0.28,
            },
            Benchmark::Dedup => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 1.00,
                mem_ns_per_instr: 0.180,
                l2_accesses_per_kinstr: 20.0,
                l2_miss_rate: 0.30,
            },
            Benchmark::Streamcluster => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 1.10,
                mem_ns_per_instr: 0.250,
                l2_accesses_per_kinstr: 26.0,
                l2_miss_rate: 0.35,
            },
            Benchmark::Canneal => BenchmarkProfile {
                benchmark: self,
                cpi_compute: 1.30,
                mem_ns_per_instr: 0.450,
                l2_accesses_per_kinstr: 34.0,
                l2_miss_rate: 0.45,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Synthetic workload characterisation of one benchmark (the substitution
/// for running the real binary; DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Which benchmark this profiles.
    pub benchmark: Benchmark,
    /// Core cycles per instruction for the compute-bound portion.
    pub cpi_compute: f64,
    /// Memory time per instruction in nanoseconds (frequency-independent).
    pub mem_ns_per_instr: f64,
    /// Shared-L2 accesses per 1000 retired instructions (drives NoC meta
    /// traffic).
    pub l2_accesses_per_kinstr: f64,
    /// Fraction of L2 accesses missing to memory (drives NoC data traffic
    /// to the memory controllers).
    pub l2_miss_rate: f64,
}

impl BenchmarkProfile {
    /// Instructions retired per core cycle at core frequency `f_ghz`
    /// (`IPC(j, z, τ)` in Definition 4): the bottleneck combination of the
    /// frequency-scaled compute time and the fixed memory time.
    ///
    /// `IPC(f) = 1 / (cpi_compute + f · t_mem)` — memory-bound applications
    /// lose IPC as frequency rises (more core cycles spent waiting), which
    /// is what makes their *throughput* saturate.
    #[must_use]
    pub fn ipc(&self, f_ghz: f64) -> f64 {
        1.0 / (self.cpi_compute + f_ghz * self.mem_ns_per_instr)
    }

    /// Instructions retired per nanosecond at `f_ghz` — the paper's
    /// per-core performance term `IPC(j, k, f_j) · f_j` (Definition 1).
    #[must_use]
    pub fn throughput(&self, f_ghz: f64) -> f64 {
        self.ipc(f_ghz) * f_ghz
    }

    /// The throughput ceiling as frequency grows without bound
    /// (`1 / t_mem`); infinite for a perfectly compute-bound profile.
    #[must_use]
    pub fn throughput_ceiling(&self) -> f64 {
        if self.mem_ns_per_instr <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.mem_ns_per_instr
        }
    }

    /// The lowest DVFS level achieving at least `efficiency` (e.g. 0.95) of
    /// the benchmark's throughput at the table's top level. Compute-bound
    /// applications want the top level; heavily memory-bound ones are
    /// nearly as fast several levels down — this is what an honest,
    /// well-behaved runtime would request power for.
    #[must_use]
    pub fn desired_level(&self, table: &DvfsTable, efficiency: f64) -> FrequencyLevel {
        let top = self.throughput(table.freq_ghz(table.max_level()));
        for level in table.iter_levels() {
            if self.throughput(table.freq_ghz(level)) >= efficiency * top {
                return level;
            }
        }
        table.max_level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("doom"), None);
    }

    #[test]
    fn throughput_increases_with_frequency() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let mut last = 0.0;
            for f in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
                let t = p.throughput(f);
                assert!(t > last, "{b}: throughput not increasing at {f} GHz");
                last = t;
            }
            assert!(last < p.throughput_ceiling());
        }
    }

    #[test]
    fn ipc_decreases_with_frequency_for_memory_bound() {
        let p = Benchmark::Canneal.profile();
        assert!(p.ipc(3.0) < p.ipc(0.5));
    }

    #[test]
    fn compute_bound_gains_more_from_frequency() {
        // blackscholes (compute-bound) speeds up nearly 6x from 0.5->3.0 GHz;
        // canneal (memory-bound) gains much less.
        let bs = Benchmark::Blackscholes.profile();
        let cn = Benchmark::Canneal.profile();
        let bs_gain = bs.throughput(3.0) / bs.throughput(0.5);
        let cn_gain = cn.throughput(3.0) / cn.throughput(0.5);
        assert!(bs_gain > 5.0, "blackscholes gain {bs_gain}");
        assert!(cn_gain < 3.5, "canneal gain {cn_gain}");
        assert!(bs_gain > cn_gain * 1.5);
    }

    #[test]
    fn desired_level_tracks_boundedness() {
        let table = DvfsTable::default_six_level();
        let bs = Benchmark::Blackscholes
            .profile()
            .desired_level(&table, 0.90);
        let cn = Benchmark::Canneal.profile().desired_level(&table, 0.90);
        assert!(
            bs > cn,
            "compute-bound wants higher level: {bs:?} vs {cn:?}"
        );
        assert_eq!(
            Benchmark::Blackscholes.profile().desired_level(&table, 1.0),
            table.max_level()
        );
    }

    #[test]
    fn profiles_are_physically_plausible() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.cpi_compute > 0.0 && p.cpi_compute < 5.0);
            assert!(p.mem_ns_per_instr >= 0.0 && p.mem_ns_per_instr < 1.0);
            assert!(p.l2_miss_rate >= 0.0 && p.l2_miss_rate <= 1.0);
            assert!(p.l2_accesses_per_kinstr >= 0.0);
            // IPC at any level stays in a sane range.
            for f in [0.5, 3.0] {
                let ipc = p.ipc(f);
                assert!(ipc > 0.1 && ipc < 2.0, "{b}: IPC {ipc} at {f} GHz");
            }
        }
    }
}
