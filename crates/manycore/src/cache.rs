//! Set-associative caches and a MESI-lite directory — the detailed memory
//! subsystem of Table I (16 KB 2-way L1D with 32 B lines, 32 KB 2-way L1I,
//! 64 KB shared-L2 slice per node with 64 B lines under a MESI protocol).
//!
//! The default system model drives NoC traffic from per-benchmark access
//! *rates* (fast, calibration-friendly). Enabling
//! [`crate::SystemConfig::detailed_caches`] replaces the rate model with
//! these structures: tiles run synthetic address streams through a real L1,
//! L1 misses travel the NoC to the line's home L2 slice, the home consults
//! its tag store and directory, write misses invalidate remote sharers, and
//! L2 misses pay the 200-cycle memory latency. Every structure here is
//! deterministic and unit-tested in isolation.

use std::collections::BTreeSet;

/// Geometry of one cache (sizes in Table I are per structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Table I: private L1 data cache — 16 KB, two-way, 32 B lines.
    #[must_use]
    pub fn l1_data() -> Self {
        CacheConfig {
            sets: 16 * 1024 / (2 * 32),
            ways: 2,
            line_bytes: 32,
        }
    }

    /// Table I: private L1 instruction cache — 32 KB, two-way, 64 B lines.
    #[must_use]
    pub fn l1_instr() -> Self {
        CacheConfig {
            sets: 32 * 1024 / (2 * 64),
            ways: 2,
            line_bytes: 64,
        }
    }

    /// Table I: shared L2 slice — 64 KB per node, 64 B lines (we model it
    /// four-way, a common choice the paper leaves unspecified).
    #[must_use]
    pub fn l2_slice() -> Self {
        CacheConfig {
            sets: 64 * 1024 / (4 * 64),
            ways: 4,
            line_bytes: 64,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// The line (tag-aligned address) evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// A set-associative cache tag store with true-LRU replacement.
///
/// Only tags are modelled (the simulator never needs data values); an
/// access allocates on miss and returns the victim line so the caller can
/// write back / invalidate directory state.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `tags[set * ways + way]` — line address or `u64::MAX` for invalid.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or a
    /// non-power-of-two line size).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets > 0 && config.ways > 0);
        assert!(config.line_bytes.is_power_of_two());
        SetAssocCache {
            config,
            tags: vec![u64::MAX; config.sets * config.ways],
            stamps: vec![0; config.sets * config.ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes as u64 - 1)
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / self.config.line_bytes as u64) % self.config.sets as u64) as usize
    }

    /// Accesses `addr`, allocating its line on a miss.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.clock += 1;
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let base = set * self.config.ways;
        // Hit?
        for way in 0..self.config.ways {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return AccessResult {
                    hit: true,
                    evicted: None,
                };
            }
        }
        self.misses += 1;
        // Miss: pick invalid way, else LRU.
        let victim_way = (0..self.config.ways)
            .find(|w| self.tags[base + w] == u64::MAX)
            .unwrap_or_else(|| {
                (0..self.config.ways)
                    .min_by_key(|w| self.stamps[base + w])
                    .expect("ways > 0")
            });
        let evicted =
            (self.tags[base + victim_way] != u64::MAX).then_some(self.tags[base + victim_way]);
        self.tags[base + victim_way] = line;
        self.stamps[base + victim_way] = self.clock;
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Removes a line if present (directory-initiated invalidation).
    /// Returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let base = set * self.config.ways;
        for way in 0..self.config.ways {
            if self.tags[base + way] == line {
                self.tags[base + way] = u64::MAX;
                return true;
            }
        }
        false
    }

    /// Whether a line is currently cached, without touching LRU state.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_of(line);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|w| self.tags[base + w] == line)
    }

    /// Lifetime hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate so far (0.0 when unused).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// MESI-lite line state kept by the home directory. We fold E into M
/// (silent E→M upgrades are invisible to the interconnect, which is all we
/// model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not tracked by the directory.
    Invalid,
    /// One or more read-only sharers.
    Shared,
    /// A single owner holds the line writable.
    Modified,
}

/// Directory entry for one line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DirEntry {
    line: u64,
    state: LineState,
    sharers: BTreeSet<u16>,
}

/// What the directory asks the protocol to do in response to a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryAction {
    /// Cores whose copies must be invalidated before the request completes
    /// (each costs one Meta packet on the NoC).
    pub invalidate: Vec<u16>,
    /// Whether the line was already tracked (a directory "hit"; an
    /// untracked line must be fetched from memory by the caller's L2).
    pub was_tracked: bool,
}

/// A per-home-node MESI-lite directory over an open-addressed line table.
///
/// The table is bounded; when full, the least-recently-allocated entry is
/// evicted (its sharers are returned for invalidation), modelling a sparse
/// directory's capacity pressure.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: Vec<DirEntry>,
    capacity: usize,
}

impl Directory {
    /// Creates a directory tracking at most `capacity` lines.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Directory {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    fn find(&mut self, line: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.line == line)
    }

    /// Handles a read request from `core`: the core becomes a sharer; a
    /// modified owner (other than the reader) must be downgraded, which we
    /// model as an invalidation message.
    pub fn read(&mut self, line: u64, core: u16) -> DirectoryAction {
        match self.find(line) {
            Some(i) => {
                let entry = &mut self.entries[i];
                let mut invalidate = Vec::new();
                if entry.state == LineState::Modified {
                    invalidate = entry
                        .sharers
                        .iter()
                        .copied()
                        .filter(|s| *s != core)
                        .collect();
                    entry.sharers.retain(|s| *s == core);
                    entry.state = LineState::Shared;
                }
                entry.sharers.insert(core);
                DirectoryAction {
                    invalidate,
                    was_tracked: true,
                }
            }
            None => {
                let evict_invalidations = self.allocate(line, core, LineState::Shared);
                DirectoryAction {
                    invalidate: evict_invalidations,
                    was_tracked: false,
                }
            }
        }
    }

    /// Handles a write request from `core`: every other sharer is
    /// invalidated and the core becomes the modified owner.
    pub fn write(&mut self, line: u64, core: u16) -> DirectoryAction {
        match self.find(line) {
            Some(i) => {
                let entry = &mut self.entries[i];
                let invalidate: Vec<u16> = entry
                    .sharers
                    .iter()
                    .copied()
                    .filter(|s| *s != core)
                    .collect();
                entry.sharers.clear();
                entry.sharers.insert(core);
                entry.state = LineState::Modified;
                DirectoryAction {
                    invalidate,
                    was_tracked: true,
                }
            }
            None => {
                let evict_invalidations = self.allocate(line, core, LineState::Modified);
                DirectoryAction {
                    invalidate: evict_invalidations,
                    was_tracked: false,
                }
            }
        }
    }

    /// Allocates a new entry, evicting the oldest when full. Returns the
    /// sharers of the evicted entry (they must be invalidated).
    fn allocate(&mut self, line: u64, core: u16, state: LineState) -> Vec<u16> {
        let mut invalidations = Vec::new();
        if self.entries.len() >= self.capacity {
            let victim = self.entries.remove(0);
            invalidations = victim.sharers.into_iter().collect();
        }
        let mut sharers = BTreeSet::new();
        sharers.insert(core);
        self.entries.push(DirEntry {
            line,
            state,
            sharers,
        });
        invalidations
    }

    /// Current state of a line.
    #[must_use]
    pub fn state(&self, line: u64) -> LineState {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map_or(LineState::Invalid, |e| e.state)
    }

    /// Sharer set of a line (empty when untracked).
    #[must_use]
    pub fn sharers(&self, line: u64) -> Vec<u16> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map_or_else(Vec::new, |e| e.sharers.iter().copied().collect())
    }

    /// Number of tracked lines.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

/// A deterministic synthetic memory-reference generator with temporal
/// locality: most references revisit a hot working set, the rest stream
/// through a large footprint. The hot fraction and working-set size are
/// derived from the benchmark's L2 miss rate so detailed-cache runs land
/// near the profile's rates.
#[derive(Debug, Clone)]
pub struct AddressStream {
    state: u64,
    hot_base: u64,
    hot_lines: u64,
    cold_base: u64,
    cold_lines: u64,
    hot_fraction_permille: u64,
    write_permille: u64,
}

impl AddressStream {
    /// Creates a stream for a tile.
    ///
    /// `hot_kb` controls the hot working-set size; `hot_fraction` the share
    /// of references that stay inside it; `write_fraction` the share of
    /// writes. Each tile gets a disjoint address region (by `tile` id) plus
    /// a shared region for cross-tile coherence traffic. All addresses fit
    /// in 37 bits so that line indices (`addr >> 6`) stay within the 31
    /// bits the coherence packets carry — no aliasing between regions.
    #[must_use]
    pub fn new(tile: u16, hot_kb: u64, hot_fraction: f64, write_fraction: f64) -> Self {
        AddressStream {
            state: 0x9E37_79B9_7F4A_7C15 ^ (u64::from(tile) << 32 | 0x1234_5678),
            // 64 MB private region per tile: tiles never alias each other.
            hot_base: u64::from(tile) << 26,
            hot_lines: (hot_kb * 1024 / 64).max(1),
            // Shared cold region spanning 256 MB above all private regions.
            cold_base: 1 << 36,
            cold_lines: 256 * 1024 * 1024 / 64,
            hot_fraction_permille: (hot_fraction.clamp(0.0, 1.0) * 1000.0) as u64,
            write_permille: (write_fraction.clamp(0.0, 1.0) * 1000.0) as u64,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: deterministic, fast, good enough for locality mixes.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Produces the next reference: `(address, is_write)`.
    pub fn next_ref(&mut self) -> (u64, bool) {
        let r = self.next_u64();
        let is_write = r % 1000 < self.write_permille;
        let addr = if (r >> 10) % 1000 < self.hot_fraction_permille {
            self.hot_base + ((r >> 20) % self.hot_lines) * 64
        } else {
            self.cold_base + ((r >> 20) % self.cold_lines) * 64
        };
        (addr, is_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1_data().capacity_bytes(), 16 * 1024);
        assert_eq!(CacheConfig::l1_instr().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_slice().capacity_bytes(), 64 * 1024);
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut c = SetAssocCache::new(CacheConfig::l1_data());
        assert!(!c.access(0x1000).hit);
        assert!(c.access(0x1000).hit);
        assert!(c.access(0x101F).hit, "same 32B line");
        assert!(!c.access(0x1020).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way: fill both ways of one set, touch the first, then allocate a
        // third conflicting line — the second must be evicted.
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 32,
        };
        let mut c = SetAssocCache::new(cfg);
        let set_stride = (cfg.sets * cfg.line_bytes) as u64; // lines mapping to same set
        let (a, b, d) = (0u64, set_stride, 2 * set_stride);
        assert!(!c.access(a).hit);
        assert!(!c.access(b).hit);
        assert!(c.access(a).hit); // a is now MRU
        let res = c.access(d);
        assert!(!res.hit);
        assert_eq!(res.evicted, Some(b), "LRU way should be b");
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(CacheConfig::l1_data());
        c.access(0x40);
        assert!(c.probe(0x40));
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40), "double invalidate is a no-op");
    }

    #[test]
    fn directory_read_then_write_invalidates_sharers() {
        let mut d = Directory::new(64);
        assert_eq!(d.read(0x100, 1).invalidate, vec![]);
        assert_eq!(d.read(0x100, 2).invalidate, vec![]);
        assert_eq!(d.state(0x100), LineState::Shared);
        assert_eq!(d.sharers(0x100), vec![1, 2]);
        // Core 3 writes: both readers invalidated.
        let act = d.write(0x100, 3);
        assert_eq!(act.invalidate, vec![1, 2]);
        assert!(act.was_tracked);
        assert_eq!(d.state(0x100), LineState::Modified);
        assert_eq!(d.sharers(0x100), vec![3]);
    }

    #[test]
    fn directory_read_downgrades_modified_owner() {
        let mut d = Directory::new(64);
        d.write(0x200, 5);
        let act = d.read(0x200, 6);
        assert_eq!(act.invalidate, vec![5], "owner must be downgraded");
        assert_eq!(d.state(0x200), LineState::Shared);
        assert_eq!(d.sharers(0x200), vec![6]);
    }

    #[test]
    fn directory_owner_rereads_own_line_quietly() {
        let mut d = Directory::new(64);
        d.write(0x200, 5);
        let act = d.read(0x200, 5);
        assert!(act.invalidate.is_empty());
    }

    #[test]
    fn directory_capacity_evicts_with_invalidations() {
        let mut d = Directory::new(2);
        d.read(0x100, 1);
        d.read(0x200, 2);
        let act = d.read(0x300, 3);
        assert_eq!(act.invalidate, vec![1], "evicted line's sharers");
        assert_eq!(d.tracked_lines(), 2);
        assert_eq!(d.state(0x100), LineState::Invalid);
    }

    #[test]
    fn address_stream_is_deterministic_and_local() {
        let mut a = AddressStream::new(7, 16, 0.9, 0.2);
        let mut b = AddressStream::new(7, 16, 0.9, 0.2);
        let refs_a: Vec<(u64, bool)> = (0..100).map(|_| a.next_ref()).collect();
        let refs_b: Vec<(u64, bool)> = (0..100).map(|_| b.next_ref()).collect();
        assert_eq!(refs_a, refs_b);
        // Different tiles see different hot regions.
        let mut c = AddressStream::new(8, 16, 0.9, 0.2);
        let refs_c: Vec<(u64, bool)> = (0..100).map(|_| c.next_ref()).collect();
        assert_ne!(refs_a, refs_c);
    }

    #[test]
    fn hot_stream_mostly_hits_a_big_enough_cache() {
        let mut cache = SetAssocCache::new(CacheConfig::l1_data());
        let mut stream = AddressStream::new(1, 8, 1.0, 0.0); // 8 KB hot set, all-hot
        for _ in 0..10_000 {
            let (addr, _) = stream.next_ref();
            cache.access(addr);
        }
        assert!(
            cache.hit_rate() > 0.9,
            "hot set should fit: hit rate {}",
            cache.hit_rate()
        );
    }

    #[test]
    fn streaming_misses_a_small_cache() {
        let mut cache = SetAssocCache::new(CacheConfig::l1_data());
        let mut stream = AddressStream::new(1, 8, 0.0, 0.0); // all-cold stream
        for _ in 0..10_000 {
            let (addr, _) = stream.next_ref();
            cache.access(addr);
        }
        assert!(
            cache.hit_rate() < 0.05,
            "cold stream should thrash: hit rate {}",
            cache.hit_rate()
        );
    }

    #[test]
    fn write_fraction_respected() {
        let mut stream = AddressStream::new(1, 8, 0.5, 0.3);
        let writes = (0..10_000).filter(|_| stream.next_ref().1).count();
        let frac = writes as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "write fraction {frac}");
    }
}
