//! Optional power-protocol metrics, mirroring the NoC's design: a plain,
//! write-only struct the epoch loop feeds with a handful of integer adds,
//! absorbed into the `htpb-obs` registry after the run (see
//! [`crate::obs_bridge`]).
//!
//! Nothing in [`ManyCoreSystem::step`](crate::ManyCoreSystem::step) ever
//! reads these fields, so enabling them cannot perturb the simulation —
//! the property locked by the metrics-on golden digests and the
//! conformance metamorphic suite.

use htpb_noc::LatencyHistogram;

/// Number of budget-utilization deciles tracked per epoch.
pub const UTIL_DECILES: usize = 10;

/// Live power-protocol tallies, updated when metrics are enabled.
#[derive(Debug, Clone, Default)]
pub struct SysMetrics {
    /// End-to-end latency of `POWER_GRANT` deliveries (manager to core),
    /// in cycles.
    pub grant_latency: LatencyHistogram,
    /// Per-epoch budget utilization in deciles: bucket `i` counts epochs
    /// whose `granted / budget` fell in `[i*10%, (i+1)*10%)`, with the last
    /// bucket absorbing 90% and above.
    pub util_decile: [u64; UTIL_DECILES],
    /// Sum over epochs of per-epoch utilization in milli-units (0..=1000),
    /// so the mean utilization is derivable without float accumulation.
    pub util_milli_sum: u64,
    /// Epochs observed by [`SysMetrics::on_epoch`].
    pub epochs: u64,
}

impl SysMetrics {
    /// Records one delivered grant's end-to-end latency.
    #[inline]
    pub(crate) fn on_grant(&mut self, latency: u64) {
        self.grant_latency.record(latency);
    }

    /// Records one allocation epoch's granted total against the budget.
    ///
    /// Utilization is quantized to integer milli-units immediately — the
    /// absorbed values must be pure integers so cross-worker sums commute
    /// bit-exactly (the `metrics.prom` byte-determinism contract).
    #[inline]
    pub(crate) fn on_epoch(&mut self, granted_mw: f64, budget_mw: f64) {
        let milli = if budget_mw > 0.0 {
            ((granted_mw / budget_mw) * 1000.0)
                .round()
                .clamp(0.0, 1000.0) as u64
        } else {
            0
        };
        let decile = ((milli / 100) as usize).min(UTIL_DECILES - 1);
        self.util_decile[decile] += 1;
        self.util_milli_sum += milli;
        self.epochs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_quantizes_to_deciles() {
        let mut m = SysMetrics::default();
        m.on_epoch(0.0, 1000.0); // 0.0% -> decile 0
        m.on_epoch(450.0, 1000.0); // 45% -> decile 4
        m.on_epoch(999.0, 1000.0); // 99.9% -> decile 9
        m.on_epoch(2000.0, 1000.0); // clamped to 100% -> decile 9
        m.on_epoch(5.0, 0.0); // zero budget -> 0
        assert_eq!(m.util_decile[0], 2);
        assert_eq!(m.util_decile[4], 1);
        assert_eq!(m.util_decile[9], 2);
        assert_eq!(m.epochs, 5);
        assert_eq!(m.util_milli_sum, 450 + 999 + 1000);
    }

    #[test]
    fn grant_latency_is_recorded() {
        let mut m = SysMetrics::default();
        m.on_grant(17);
        m.on_grant(3);
        assert_eq!(m.grant_latency.count(), 2);
        assert_eq!(m.grant_latency.sum(), 20);
    }
}
