//! Bridge from the simulators' plain, write-only metric structs to the
//! shared `htpb-obs` registry.
//!
//! The hot layers (`htpb-noc`'s pipeline, this crate's epoch loop) tally
//! into plain integers with zero synchronization; this module is the single
//! place where those tallies — plus the counters the simulators keep for
//! their own statistics anyway — are folded into the global registry,
//! *after* the simulation work is done. Every absorbed value is an integer
//! and every registry instrument is commutative under addition, so absorbing
//! N runs from 1 worker or 4 workers yields bit-identical totals (the
//! `metrics.prom` byte-determinism contract).
//!
//! All series absorbed here are [`Class::Sim`]: pure functions of simulation
//! state, independent of wall-clock time and scheduling.

use htpb_noc::{LatencyHistogram, Network, PacketInspector};
use htpb_obs::{global, Class};
use htpb_power::GlobalManager;

use crate::metrics::{SysMetrics, UTIL_DECILES};
use crate::system::ManyCoreSystem;

/// Upper-inclusive bucket bounds matching [`LatencyHistogram`]'s layout:
/// its bucket `i` holds `2^i <= l < 2^(i+1)` (bucket 0 also holds 0), i.e.
/// upper bound `2^(i+1) - 1`; its last bucket becomes the registry
/// histogram's `+Inf` bucket.
fn latency_bounds() -> Vec<u64> {
    (0..31).map(|i| (1u64 << (i + 1)) - 1).collect()
}

/// Folds a [`LatencyHistogram`] into a registry histogram of the same name.
fn absorb_latency(name: &str, help: &str, lat: &LatencyHistogram) {
    let h = global().histogram(name, &latency_bounds(), help, Class::Sim);
    h.merge_counts(lat.buckets(), lat.sum());
}

/// Absorbs a finished (or paused) network's statistics and live metrics.
///
/// Safe to call with metrics disabled: the always-on [`htpb_noc::NetworkStats`]
/// counters are absorbed regardless; the opt-in occupancy/utilization
/// tallies only when [`Network::enable_metrics`] was active.
pub fn absorb_network<I: PacketInspector>(net: &Network<I>) {
    let reg = global();
    let s = net.stats();
    reg.counter(
        "htpb_noc_packets_injected_total",
        "Packets accepted into injection queues",
        Class::Sim,
    )
    .add(s.injected_packets());
    reg.counter(
        "htpb_noc_packets_delivered_total",
        "Packets fully ejected at their destination",
        Class::Sim,
    )
    .add(s.delivered_packets());
    reg.counter(
        "htpb_noc_flits_delivered_total",
        "Flits delivered across all packets",
        Class::Sim,
    )
    .add(s.delivered_flits());
    reg.counter(
        "htpb_noc_packets_dropped_total",
        "Packets dropped by fault injection",
        Class::Sim,
    )
    .add(s.dropped_packets());
    reg.counter(
        "htpb_noc_packets_modified_total",
        "Packets delivered with in-flight tampering",
        Class::Sim,
    )
    .add(s.modified_packets());
    absorb_latency(
        "htpb_noc_packet_latency_cycles",
        "End-to-end packet latency, injection to tail ejection",
        s.latency(),
    );

    // Per-router flit throughput: the simulator maintains this map for its
    // own diagnostics, so pulling it here costs the hot loop nothing.
    let mut label = String::new();
    for (i, forwarded) in net.utilization_map().into_iter().enumerate() {
        if forwarded == 0 {
            continue;
        }
        use std::fmt::Write as _;
        label.clear();
        let _ = write!(label, "{i}");
        reg.counter_with(
            "htpb_noc_router_flits_forwarded_total",
            &[("router", &label)],
            "Flits forwarded per router",
            Class::Sim,
        )
        .add(forwarded);
    }

    let Some(m) = net.metrics() else { return };
    reg.counter(
        "htpb_noc_active_router_cycles_total",
        "Time-integral of routers holding at least one flit",
        Class::Sim,
    )
    .add(m.active_router_cycles);
    reg.counter(
        "htpb_noc_busy_link_cycles_total",
        "Time-integral of occupied link slots",
        Class::Sim,
    )
    .add(m.busy_link_cycles);
    reg.counter(
        "htpb_noc_queued_flit_cycles_total",
        "Time-integral of flits waiting in injection queues",
        Class::Sim,
    )
    .add(m.queued_flit_cycles);
    reg.counter(
        "htpb_noc_stalled_router_cycles_total",
        "Router-cycles lost to fault-injected stalls",
        Class::Sim,
    )
    .add(m.stalled_router_cycles);
    // Occupancy bucket i holds pushes that left i+1 flits in the VC, so the
    // finite upper bounds are 1..=7 flits and the last bucket is +Inf. The
    // sum uses each bucket's exact occupancy (finite buckets are one value
    // wide); the +Inf bucket contributes its lower bound, making the sum a
    // tight lower bound rather than an estimate.
    let h = global().histogram(
        "htpb_noc_vc_occupancy_flits",
        &[1, 2, 3, 4, 5, 6, 7],
        "VC buffer occupancy after each flit push",
        Class::Sim,
    );
    let sum: u64 = m
        .vc_occupancy
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64 + 1) * c)
        .sum();
    h.merge_counts(&m.vc_occupancy, sum);
}

/// Absorbs the global manager's budget, epoch count and degradation
/// counters (PR 3's graceful-degradation hardening made executable as
/// metrics).
pub fn absorb_manager(mgr: &GlobalManager) {
    let reg = global();
    reg.gauge("htpb_power_budget_mw", "Chip power budget", Class::Sim)
        .set(mgr.budget_mw().round() as i64);
    reg.counter(
        "htpb_power_epochs_total",
        "Budgeting epochs the manager has run",
        Class::Sim,
    )
    .add(mgr.epochs_run());
    let d = mgr.degradation();
    reg.counter(
        "htpb_power_requests_timeout_total",
        "Silent cores covered by hold-last-grant synthesis",
        Class::Sim,
    )
    .add(d.timeouts);
    reg.counter(
        "htpb_power_requests_clamped_total",
        "Requests clamped by plausibility hardening",
        Class::Sim,
    )
    .add(d.clamps);
    reg.counter(
        "htpb_power_requests_rejected_total",
        "Requests discarded by checksum authentication",
        Class::Sim,
    )
    .add(d.rejects);
}

/// Absorbs the epoch-loop tallies ([`SysMetrics`]).
pub fn absorb_sys_metrics(m: &SysMetrics) {
    let reg = global();
    absorb_latency(
        "htpb_power_grant_latency_cycles",
        "POWER_GRANT end-to-end latency, manager to core",
        &m.grant_latency,
    );
    // Decile bucket i covers [i*100, (i+1)*100) milli-units; the last
    // covers >= 900, i.e. finite upper bounds 99..=899 then +Inf.
    let bounds: Vec<u64> = (1..UTIL_DECILES as u64).map(|i| i * 100 - 1).collect();
    let h = reg.histogram(
        "htpb_power_budget_utilization_milli",
        &bounds,
        "Per-epoch granted/budget ratio in milli-units",
        Class::Sim,
    );
    h.merge_counts(&m.util_decile, m.util_milli_sum);
}

/// Absorbs everything a finished system knows: its network, its manager
/// and its epoch-loop tallies. Called automatically when a metrics-enabled
/// [`ManyCoreSystem`] is dropped; call it directly to absorb earlier.
pub fn absorb_system<I: PacketInspector>(sys: &ManyCoreSystem<I>) {
    absorb_network(sys.network());
    absorb_manager(sys.manager());
    if let Some(m) = sys.sys_metrics() {
        absorb_sys_metrics(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_bounds_match_histogram_layout() {
        let b = latency_bounds();
        assert_eq!(b.len(), 31);
        assert_eq!(b[0], 1); // bucket 0: latencies 0 and 1
        assert_eq!(b[1], 3); // bucket 1: 2..=3
        assert_eq!(b[30], (1u64 << 31) - 1);

        // A LatencyHistogram's 32 counts line up with 31 finite bounds + Inf.
        let mut lat = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 4, 100, 1u64 << 40] {
            lat.record(v);
        }
        let h = htpb_obs::Histogram::new(&b);
        h.merge_counts(lat.buckets(), lat.sum());
        let snap = h.snapshot();
        assert_eq!(snap.count(), lat.count());
        assert_eq!(snap.sum, lat.sum());
        // 0 and 1 in the first bucket, u64::MAX in +Inf.
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[31], 1);
    }
}
