//! Event-driven tiled many-core system simulator.
//!
//! This crate is the *platform* substrate of the SOCC 2018 reproduction: a
//! shared-memory chip following the tiled architecture of Section II-A —
//! every node couples a core, a private L1, a slice of the shared L2 and a
//! router, and multi-threaded applications run their threads on different
//! cores, communicating through the NoC (Section V-A, Table I).
//!
//! Because the original Alpha-ISA trace-driven simulator and the
//! PARSEC/SPLASH-2 binaries are not reproducible here, cores use an
//! **analytic bottleneck model**: each benchmark is characterised by a
//! compute CPI (scales with frequency) and a memory time per instruction
//! (frequency-independent), giving the `IPC(app, f)` surface that all of
//! the paper's metrics (Definitions 1–5) consume. See DESIGN.md §4 for the
//! substitution argument. Cache miss rates and coherence message rates
//! drive genuine request/reply traffic through the cycle-accurate NoC, and
//! the power budgeting protocol (requests, allocation, grants) is carried
//! entirely by in-band packets — which is what the Trojan attacks.
//!
//! ```
//! use htpb_manycore::{Benchmark, SystemBuilder, Workload, AppRole};
//! use htpb_noc::Mesh2d;
//!
//! let mesh = Mesh2d::new(4, 4).unwrap();
//! let mut system = SystemBuilder::new(mesh)
//!     .manager(mesh.center())
//!     .workload(Workload::new()
//!         .app(Benchmark::Blackscholes, 6, AppRole::Legitimate)
//!         .app(Benchmark::Canneal, 6, AppRole::Legitimate))
//!     .build()
//!     .unwrap();
//! system.run(3_000);
//! let report = system.performance_report();
//! assert_eq!(report.apps.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod benchmark;
pub mod cache;
mod error;
mod metrics;
pub mod obs_bridge;
mod report;
mod system;
mod tile;

pub use app::{AppId, AppRole, Application, Workload};
pub use benchmark::{Benchmark, BenchmarkProfile};
pub use cache::{
    AccessResult, AddressStream, CacheConfig, Directory, DirectoryAction, LineState, SetAssocCache,
};
pub use error::ManycoreError;
pub use metrics::{SysMetrics, UTIL_DECILES};
pub use report::{AppPerformance, PerformanceReport};
pub use system::{ManyCoreSystem, RequestProtection, SystemBuilder, SystemConfig};
pub use tile::Tile;
