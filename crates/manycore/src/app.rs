use crate::benchmark::Benchmark;

/// Identifier of an application within one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

/// Whether an application is on the attacker's side or a legitimate victim
/// candidate (Section IV: Δ is the set of attacker applications, Γ the set
/// of victims).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppRole {
    /// A well-behaved application; its requests are subject to tampering.
    Legitimate,
    /// The attacker's application. The Trojans never modify its requests
    /// (comparator 3 in Fig. 2a), and — being malicious — it may inflate
    /// its own requests via [`Application::greed`].
    Malicious,
}

/// One multi-threaded application: a benchmark plus a thread count and role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Application {
    /// Application id (index in the workload).
    pub id: AppId,
    /// Which benchmark the threads run.
    pub benchmark: Benchmark,
    /// Number of threads (one core each).
    pub threads: usize,
    /// Attacker or legitimate.
    pub role: AppRole,
    /// Request inflation factor for malicious applications: the app asks
    /// for `greed ×` the power it actually wants. 1.0 = honest. Ignored for
    /// legitimate applications.
    pub greed: f64,
}

impl Application {
    /// Whether this application belongs to the attacker set Δ.
    #[must_use]
    pub fn is_malicious(&self) -> bool {
        self.role == AppRole::Malicious
    }
}

/// The set of applications sharing the chip in one experiment.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    apps: Vec<Application>,
}

impl Workload {
    /// An empty workload.
    #[must_use]
    pub fn new() -> Self {
        Workload::default()
    }

    /// Adds an application with default greed (1.0 for legitimate, 1.5 for
    /// malicious — the attacker over-asks by half).
    #[must_use]
    pub fn app(self, benchmark: Benchmark, threads: usize, role: AppRole) -> Self {
        let greed = match role {
            AppRole::Legitimate => 1.0,
            AppRole::Malicious => 1.5,
        };
        self.app_with_greed(benchmark, threads, role, greed)
    }

    /// Adds an application with an explicit greed factor.
    #[must_use]
    pub fn app_with_greed(
        mut self,
        benchmark: Benchmark,
        threads: usize,
        role: AppRole,
        greed: f64,
    ) -> Self {
        let id = AppId(self.apps.len() as u16);
        self.apps.push(Application {
            id,
            benchmark,
            threads,
            role,
            greed: greed.max(0.0),
        });
        self
    }

    /// The applications in insertion order.
    #[must_use]
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// Total threads across all applications.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.apps.iter().map(|a| a.threads).sum()
    }

    /// Applications in the attacker set Δ.
    pub fn attackers(&self) -> impl Iterator<Item = &Application> {
        self.apps.iter().filter(|a| a.is_malicious())
    }

    /// Applications in the victim set Γ.
    pub fn victims(&self) -> impl Iterator<Item = &Application> {
        self.apps.iter().filter(|a| !a.is_malicious())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder_assigns_ids_in_order() {
        let w = Workload::new()
            .app(Benchmark::Barnes, 4, AppRole::Malicious)
            .app(Benchmark::Raytrace, 8, AppRole::Legitimate);
        assert_eq!(w.apps().len(), 2);
        assert_eq!(w.apps()[0].id, AppId(0));
        assert_eq!(w.apps()[1].id, AppId(1));
        assert_eq!(w.total_threads(), 12);
    }

    #[test]
    fn default_greed_by_role() {
        let w = Workload::new()
            .app(Benchmark::Barnes, 1, AppRole::Malicious)
            .app(Benchmark::Vips, 1, AppRole::Legitimate);
        assert!((w.apps()[0].greed - 1.5).abs() < 1e-12);
        assert!((w.apps()[1].greed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attacker_victim_partition() {
        let w = Workload::new()
            .app(Benchmark::Barnes, 1, AppRole::Malicious)
            .app(Benchmark::Vips, 1, AppRole::Legitimate)
            .app(Benchmark::Dedup, 1, AppRole::Legitimate);
        assert_eq!(w.attackers().count(), 1);
        assert_eq!(w.victims().count(), 2);
    }

    #[test]
    fn negative_greed_clamped() {
        let w = Workload::new().app_with_greed(Benchmark::Vips, 1, AppRole::Malicious, -2.0);
        assert_eq!(w.apps()[0].greed, 0.0);
    }
}
