use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htpb_noc::{
    DeliveredPacket, FaultHook, Mesh2d, Network, NetworkConfig, NocError, NodeId, NullInspector,
    Packet, PacketInspector, PacketKind, RoutingKind,
};
use htpb_power::{
    AllocatorKind, DegradationCounters, GlobalManager, HardeningConfig, PowerModel, PowerRequest,
};

use crate::app::Workload;
use crate::cache::{CacheConfig, Directory, SetAssocCache};
use crate::error::ManycoreError;
use crate::metrics::SysMetrics;
use crate::report::{AppPerformance, PerformanceReport};
use crate::tile::{Assignment, Tile};

/// Static configuration of a many-core system (Table I defaults).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Mesh topology (the paper's default platform is 16×16).
    pub mesh: Mesh2d,
    /// Node hosting the global power manager.
    pub manager: NodeId,
    /// NoC routing algorithm.
    pub routing: RoutingKind,
    /// Power allocation policy the manager runs.
    pub allocator: AllocatorKind,
    /// Budgeting epoch length in cycles. Requests are injected at the start
    /// of each epoch; the allocation runs at 60% of the epoch, leaving time
    /// for requests to reach the manager and grants to travel back.
    pub epoch_cycles: u64,
    /// Chip budget as a fraction of the workload's honest aggregate demand;
    /// below 1.0 the budget is scarce, which is the regime power budgeting
    /// exists for. Ignored when `budget_mw` is set.
    pub budget_fraction: f64,
    /// Explicit chip budget in mW (overrides `budget_fraction`).
    pub budget_mw: Option<f64>,
    /// Throughput efficiency threshold used by honest cores to pick the
    /// DVFS level they request power for.
    pub efficiency: f64,
    /// Whether tiles generate shared-L2/memory background traffic.
    pub memory_traffic: bool,
    /// Shared-L2 hit service latency in cycles (Table I: six cycles).
    pub l2_hit_latency: u64,
    /// Main-memory service latency in cycles (Table I: 200 cycles).
    pub memory_latency: u64,
    /// Fraction of time the runtime wakes a *starved* core (grant below the
    /// lowest DVFS point) at the lowest level so its threads keep making
    /// minimal forward progress; the rest of the time the core is
    /// power-gated. 1.0 disables the gating (starved cores simply run at
    /// the lowest level).
    pub starvation_duty: f64,
    /// Optional keyed-checksum authentication of power requests (the
    /// defense of the paper's conclusion). `None` = the vulnerable baseline
    /// protocol the paper attacks.
    pub protection: Option<RequestProtection>,
    /// Optional graceful-degradation hardening of the global manager
    /// (request timeout → hold-last-grant, plausibility clamping; see
    /// [`htpb_power::HardeningConfig`]). `None` = the paper's trusting
    /// manager.
    pub hardening: Option<HardeningConfig>,
    /// Detailed cache mode: real L1 tag stores per tile, per-home L2
    /// slices and MESI-lite directories with invalidation traffic, instead
    /// of the rate-based memory-traffic model. Slower but structurally
    /// faithful to Table I.
    pub detailed_caches: bool,
    /// MSHR entries per core (detailed mode): a core with this many
    /// outstanding misses stalls until a reply returns, coupling core
    /// throughput to real NoC/memory latency.
    pub mshr_limit: u32,
    /// RNG seed (cache-home selection, hit/miss draws).
    pub seed: u64,
}

impl SystemConfig {
    /// Table-I-flavoured defaults on `mesh`, manager at the mesh center.
    #[must_use]
    pub fn new(mesh: Mesh2d) -> Self {
        SystemConfig {
            mesh,
            manager: mesh.center(),
            routing: RoutingKind::Xy,
            allocator: AllocatorKind::Greedy,
            epoch_cycles: 2_000,
            budget_fraction: 0.5,
            budget_mw: None,
            efficiency: 0.90,
            memory_traffic: true,
            l2_hit_latency: 6,
            memory_latency: 200,
            starvation_duty: 0.25,
            protection: None,
            hardening: None,
            detailed_caches: false,
            mshr_limit: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// Keyed-checksum protection of `POWER_REQ` payloads — the countermeasure
/// the paper's conclusion calls for.
///
/// When enabled, every core attaches a keyed checksum of its request to the
/// packet's optional OPTIONS word (Fig. 1a reserves it), and the global
/// manager validates it on receipt. The Trojan's functional module rewrites
/// only the payload field (Fig. 2a), so a tampered request no longer
/// matches its checksum and is **discarded** — the manager falls back to
/// the core's last authenticated request instead of budgeting on attacker-
/// chosen data. The key is provisioned out of band (e.g. fused per chip),
/// so the Trojan cannot forge checksums without growing far beyond its
/// 12 µm² stealth budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestProtection {
    /// The shared chip secret.
    pub key: u32,
}

impl RequestProtection {
    /// Creates a protection config with the given key.
    #[must_use]
    pub fn new(key: u32) -> Self {
        RequestProtection { key }
    }

    /// The keyed checksum over a request's (source, payload) pair. A small
    /// mixing function is plenty here: the threat model is a minimal-area
    /// Trojan, not a cryptanalyst.
    #[must_use]
    pub fn checksum(&self, src: u16, payload_mw: u32) -> u32 {
        let mut x = payload_mw ^ self.key ^ (u32::from(src) << 16 | u32::from(src));
        x ^= x >> 16;
        x = x.wrapping_mul(0x7FEB_352D);
        x ^= x >> 15;
        x = x.wrapping_mul(0x846C_A68B);
        x ^ (x >> 16)
    }

    /// Whether a delivered request's OPTIONS word matches its payload.
    #[must_use]
    pub fn verify(&self, src: u16, payload_mw: u32, options: Option<u32>) -> bool {
        options == Some(self.checksum(src, payload_mw))
    }
}

/// Builder for [`ManyCoreSystem`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    workload: Workload,
}

impl SystemBuilder {
    /// Starts a builder with default configuration on `mesh`.
    #[must_use]
    pub fn new(mesh: Mesh2d) -> Self {
        SystemBuilder {
            config: SystemConfig::new(mesh),
            workload: Workload::new(),
        }
    }

    /// Starts a builder from an explicit configuration.
    #[must_use]
    pub fn from_config(config: SystemConfig) -> Self {
        SystemBuilder {
            config,
            workload: Workload::new(),
        }
    }

    /// Places the global manager.
    #[must_use]
    pub fn manager(mut self, node: NodeId) -> Self {
        self.config.manager = node;
        self
    }

    /// Sets the workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the allocation policy.
    #[must_use]
    pub fn allocator(mut self, kind: AllocatorKind) -> Self {
        self.config.allocator = kind;
        self
    }

    /// Selects the routing algorithm.
    #[must_use]
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.config.routing = routing;
        self
    }

    /// Sets the budgeting epoch length.
    #[must_use]
    pub fn epoch_cycles(mut self, cycles: u64) -> Self {
        self.config.epoch_cycles = cycles;
        self
    }

    /// Sets the budget as a fraction of honest demand.
    #[must_use]
    pub fn budget_fraction(mut self, fraction: f64) -> Self {
        self.config.budget_fraction = fraction;
        self.config.budget_mw = None;
        self
    }

    /// Sets an explicit budget in mW.
    #[must_use]
    pub fn budget_mw(mut self, mw: f64) -> Self {
        self.config.budget_mw = Some(mw);
        self
    }

    /// Enables or disables background memory traffic.
    #[must_use]
    pub fn memory_traffic(mut self, enabled: bool) -> Self {
        self.config.memory_traffic = enabled;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the starved-core duty cycle (see [`SystemConfig::starvation_duty`]).
    #[must_use]
    pub fn starvation_duty(mut self, duty: f64) -> Self {
        self.config.starvation_duty = duty.clamp(0.0, 1.0);
        self
    }

    /// Enables keyed-checksum request authentication (see
    /// [`RequestProtection`]).
    #[must_use]
    pub fn protection(mut self, protection: RequestProtection) -> Self {
        self.config.protection = Some(protection);
        self
    }

    /// Enables graceful-degradation hardening of the global manager (see
    /// [`SystemConfig::hardening`]).
    #[must_use]
    pub fn hardening(mut self, cfg: HardeningConfig) -> Self {
        self.config.hardening = Some(cfg);
        self
    }

    /// Enables the detailed cache/coherence model (see
    /// [`SystemConfig::detailed_caches`]).
    #[must_use]
    pub fn detailed_caches(mut self, enabled: bool) -> Self {
        self.config.detailed_caches = enabled;
        self
    }

    /// Builds a clean (Trojan-free) system.
    ///
    /// # Errors
    ///
    /// See [`SystemBuilder::build_with_inspector`].
    pub fn build(self) -> Result<ManyCoreSystem<NullInspector>, ManycoreError> {
        self.build_with_inspector(NullInspector)
    }

    /// Builds a system whose NoC routers pass packets through `inspector`
    /// (e.g. a fleet of Trojans from the `htpb-trojan` crate).
    ///
    /// Threads are placed row-major, skipping the manager tile, application
    /// by application in workload order.
    ///
    /// # Errors
    ///
    /// Returns [`ManycoreError::NotEnoughCores`] if the workload exceeds the
    /// worker tiles, and [`ManycoreError::InvalidConfig`] for inconsistent
    /// parameters (manager outside the mesh, zero epoch, bad fractions).
    pub fn build_with_inspector<I: PacketInspector>(
        self,
        inspector: I,
    ) -> Result<ManyCoreSystem<I>, ManycoreError> {
        let cfg = self.config;
        if !cfg.mesh.contains(cfg.manager) {
            return Err(ManycoreError::InvalidConfig {
                reason: "manager node outside the mesh",
            });
        }
        if cfg.epoch_cycles < 10 {
            return Err(ManycoreError::InvalidConfig {
                reason: "epoch must be at least 10 cycles",
            });
        }
        if !(0.0..=10.0).contains(&cfg.budget_fraction) {
            return Err(ManycoreError::InvalidConfig {
                reason: "budget fraction out of range",
            });
        }
        if !(0.0..=1.0).contains(&cfg.efficiency) {
            return Err(ManycoreError::InvalidConfig {
                reason: "efficiency must be within [0, 1]",
            });
        }
        let available = cfg.mesh.nodes() as usize - 1;
        let requested = self.workload.total_threads();
        if requested > available {
            return Err(ManycoreError::NotEnoughCores {
                requested,
                available,
            });
        }

        let mut tiles: Vec<Tile> = cfg.mesh.iter_nodes().map(Tile::idle).collect();
        let mut next = 0usize;
        for app in self.workload.apps() {
            let profile = app.benchmark.profile();
            for _ in 0..app.threads {
                // Skip the manager tile.
                if NodeId(next as u16) == cfg.manager {
                    next += 1;
                }
                tiles[next].assign(Assignment {
                    app: app.id,
                    role: app.role,
                    greed: app.greed,
                    profile,
                });
                next += 1;
            }
        }

        let model = PowerModel::default_45nm();
        // Honest aggregate demand defines the budget scale.
        let honest_demand: f64 = tiles
            .iter()
            .filter_map(|t| {
                t.assignment().map(|a| {
                    let level = a.profile.desired_level(model.table(), cfg.efficiency);
                    model.power_mw(level)
                })
            })
            .sum();
        let budget = cfg.budget_mw.unwrap_or(honest_demand * cfg.budget_fraction);
        let mut manager = GlobalManager::new(budget, cfg.allocator.build());
        manager.set_hardening(cfg.hardening);

        let mut net = Network::with_inspector(
            NetworkConfig::new(cfg.mesh).with_routing(cfg.routing),
            inspector,
        );
        // Observability opt-in is process-wide: when the driver has turned
        // the obs layer on, every system it builds collects live metrics
        // and absorbs them into the global registry when dropped.
        let metrics = if htpb_obs::enabled() {
            net.enable_metrics();
            Some(Box::<SysMetrics>::default())
        } else {
            None
        };
        let seed = cfg.seed;
        let nodes = cfg.mesh.nodes() as usize;
        if cfg.detailed_caches {
            for t in &mut tiles {
                t.enable_detailed_cache();
            }
        }
        let (directories, l2_slices) = if cfg.detailed_caches {
            (
                (0..nodes).map(|_| Directory::new(4_096)).collect(),
                (0..nodes)
                    .map(|_| SetAssocCache::new(CacheConfig::l2_slice()))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(ManyCoreSystem {
            config: cfg,
            workload: self.workload,
            model,
            net,
            tiles,
            manager,
            events: BinaryHeap::new(),
            event_seq: 0,
            window_start: 0,
            window_requests_delivered: 0,
            window_requests_modified: 0,
            window_requests_rejected: 0,
            window_degradation_base: DegradationCounters::default(),
            last_good_request: vec![None; nodes],
            directories,
            l2_slices,
            invalidations_sent: 0,
            missing_requesters_last_epoch: 0,
            delivered_buf: Vec::new(),
            metrics,
            metrics_absorbed: false,
            rng: StdRng::seed_from_u64(seed),
        })
    }
}

/// A deferred cache/memory reply: at `fire`, node `from` sends a data packet
/// back to node `to`.
type ReplyEvent = Reverse<(u64, u64, u16, u16)>;

/// The full chip: cycle-accurate NoC + analytic tiles + the power budgeting
/// protocol, advanced in lock-step (one cycle = 1 ns of wall-clock time).
///
/// Per cycle the system:
/// 1. injects `POWER_REQ` packets at epoch boundaries and `POWER_GRANT`
///    packets after the manager's allocation point (60% into each epoch);
/// 2. fires due cache/memory reply events;
/// 3. steps the NoC one cycle (where any implanted Trojans act);
/// 4. consumes delivered packets (requests at the manager, grants at cores,
///    L2 requests at home tiles);
/// 5. ticks every assigned tile, retiring instructions and emitting
///    shared-L2 traffic.
pub struct ManyCoreSystem<I: PacketInspector = NullInspector> {
    config: SystemConfig,
    workload: Workload,
    model: PowerModel,
    net: Network<I>,
    tiles: Vec<Tile>,
    manager: GlobalManager,
    events: BinaryHeap<ReplyEvent>,
    event_seq: u64,
    window_start: u64,
    window_requests_delivered: u64,
    window_requests_modified: u64,
    window_requests_rejected: u64,
    /// Manager degradation counters at the start of the measurement window
    /// (they are cumulative in the manager; reports subtract this base).
    window_degradation_base: DegradationCounters,
    /// Last authenticated request per core (protection fallback).
    last_good_request: Vec<Option<f64>>,
    /// Per-home MESI-lite directories (detailed mode only).
    directories: Vec<Directory>,
    /// Per-home shared-L2 slice tag stores (detailed mode only).
    l2_slices: Vec<SetAssocCache>,
    /// Coherence invalidations issued (detailed mode only).
    invalidations_sent: u64,
    /// Workers whose requests never reached the manager in the last epoch —
    /// the tell-tale a packet-*drop* attack cannot hide.
    missing_requesters_last_epoch: usize,
    /// Reusable ejection buffer: its capacity ping-pongs between the NoC
    /// and [`consume_deliveries`](Self::consume_deliveries), so the
    /// steady-state epoch loop drains deliveries without allocating.
    delivered_buf: Vec<DeliveredPacket>,
    /// Optional power-protocol metrics ([`SysMetrics`]); enabled at build
    /// time when the process-wide obs layer is on, or explicitly via
    /// [`ManyCoreSystem::enable_metrics`]. Write-only from the epoch
    /// loop's point of view (non-perturbation by construction).
    metrics: Option<Box<SysMetrics>>,
    /// Whether the metrics were already absorbed into the obs registry
    /// (suppresses the drop-time auto-absorb).
    metrics_absorbed: bool,
    rng: StdRng,
}

/// OPTIONS-word marker of a directory-initiated invalidation message
/// (detailed-cache mode). Plain L2 requests carry no OPTIONS word.
const META_INVALIDATION: u32 = 0x1177_A1DA;

impl<I: PacketInspector> ManyCoreSystem<I> {
    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The workload sharing the chip.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The power model used by cores and manager.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The underlying network (statistics, inspector access).
    #[must_use]
    pub fn network(&self) -> &Network<I> {
        &self.net
    }

    /// Mutable access to the network's inspector (e.g. to reconfigure a
    /// Trojan fleet mid-run).
    pub fn inspector_mut(&mut self) -> &mut I {
        self.net.inspector_mut()
    }

    /// Installs a fault-injection hook on the underlying NoC (e.g. a seeded
    /// `htpb_faults::FaultPlan`). Like the inspector, this is configured
    /// after `build()` because the builder stays `Clone`.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.net.set_fault_hook(hook);
    }

    /// Removes and returns the fault hook, if one was installed (e.g. to
    /// read back its fault counters at the end of a run).
    pub fn take_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.net.take_fault_hook()
    }

    /// The global manager (budget, epoch summaries).
    #[must_use]
    pub fn manager(&self) -> &GlobalManager {
        &self.manager
    }

    /// Enables live metrics on this system and its NoC (idempotent); done
    /// automatically at build time when [`htpb_obs::enabled`] is on.
    pub fn enable_metrics(&mut self) {
        self.net.enable_metrics();
        if self.metrics.is_none() {
            self.metrics = Some(Box::default());
        }
    }

    /// The power-protocol metrics, when enabled.
    #[must_use]
    pub fn sys_metrics(&self) -> Option<&SysMetrics> {
        self.metrics.as_deref()
    }

    /// Absorbs this system's metrics into the global obs registry now
    /// instead of at drop time. Idempotent: the drop-time absorb is
    /// suppressed afterwards, so totals are never double-counted.
    pub fn absorb_metrics(&mut self) {
        if self.metrics.is_some() && !self.metrics_absorbed {
            self.metrics_absorbed = true;
            crate::obs_bridge::absorb_system(self);
        }
    }

    /// One tile.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    #[must_use]
    pub fn tile(&self, node: NodeId) -> &Tile {
        &self.tiles[node.0 as usize]
    }

    /// All tiles in node order.
    #[must_use]
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.net.cycle()
    }

    /// Advances the system one cycle.
    pub fn step(&mut self) {
        let cycle = self.net.cycle();
        let phase = cycle % self.config.epoch_cycles;

        if phase == 0 {
            self.inject_power_requests();
        }
        if phase == self.config.epoch_cycles * 6 / 10 {
            self.run_allocation();
        }
        self.fire_due_replies(cycle);
        self.net.step();
        self.consume_deliveries();
        self.tick_tiles();
    }

    /// Runs `cycles` cycles.
    ///
    /// While no application is assigned anywhere, a cycle on which the
    /// network is quiescent and neither an epoch boundary nor a scheduled
    /// reply fires is a perfect no-op (unassigned tiles tick without
    /// mutating state), so the loop fast-forwards the clock straight to the
    /// next cycle where anything can happen. The moment a workload is
    /// mapped — or any flit exists — every cycle is stepped for real.
    pub fn run(&mut self, cycles: u64) {
        let end = self.net.cycle() + cycles;
        let tiles_idle = self.tiles.iter().all(|t| !t.is_assigned());
        while self.net.cycle() < end {
            self.step();
            if !tiles_idle || !self.net.is_quiescent() {
                continue;
            }
            let cycle = self.net.cycle();
            let target = self.next_eventful_cycle(cycle).min(end);
            if target > cycle {
                self.net.skip_idle_cycles(target - cycle);
            }
        }
    }

    /// The earliest cycle at or after `cycle` on which [`Self::step`] can do
    /// observable work on an otherwise idle system: an epoch boundary
    /// (request injection), the allocation point, or a due reply event.
    fn next_eventful_cycle(&self, cycle: u64) -> u64 {
        let epoch = self.config.epoch_cycles;
        let alloc_phase = epoch * 6 / 10;
        let phase = cycle % epoch;
        let base = cycle - phase;
        let mut next = if phase == 0 {
            cycle
        } else if phase <= alloc_phase {
            base + alloc_phase
        } else {
            base + epoch
        };
        if let Some(&Reverse((fire, _, _, _))) = self.events.peek() {
            next = next.min(fire.max(cycle));
        }
        next
    }

    /// Runs `epochs` whole budgeting epochs.
    pub fn run_epochs(&mut self, epochs: u64) {
        self.run(epochs * self.config.epoch_cycles);
    }

    /// Starts a fresh measurement window at the current cycle.
    pub fn begin_measurement(&mut self) {
        self.window_start = self.net.cycle();
        self.window_requests_delivered = 0;
        self.window_requests_modified = 0;
        self.window_requests_rejected = 0;
        self.window_degradation_base = self.manager.degradation();
        for t in &mut self.tiles {
            t.reset_window();
        }
    }

    /// Requests rejected by checksum protection in the current window —
    /// each one is a *detected* tampering event.
    #[must_use]
    pub fn requests_rejected(&self) -> u64 {
        self.window_requests_rejected
    }

    /// Coherence invalidation messages sent so far (detailed-cache mode).
    #[must_use]
    pub fn invalidations_sent(&self) -> u64 {
        self.invalidations_sent
    }

    /// Workers whose requests never arrived in the most recent epoch — the
    /// manager-visible signature of a packet-drop attack (a false-data
    /// attack keeps this near zero; Section II-B stealth comparison).
    #[must_use]
    pub fn missing_requesters_last_epoch(&self) -> usize {
        self.missing_requesters_last_epoch
    }

    /// Instantaneous chip power draw in mW: the operating-point power of
    /// every assigned, non-starved core (starved cores are power-gated down
    /// to a retention floor the budget does not manage).
    #[must_use]
    pub fn power_draw_mw(&self) -> f64 {
        self.tiles
            .iter()
            .filter(|t| t.is_assigned() && !t.is_starved())
            .map(|t| self.model.power_mw(t.level()))
            .sum()
    }

    /// Builds the per-application performance report for the current window.
    #[must_use]
    pub fn performance_report(&self) -> PerformanceReport {
        let window = (self.net.cycle() - self.window_start).max(1);
        let apps = self
            .workload
            .apps()
            .iter()
            .map(|app| {
                let mut theta = 0.0;
                let mut starved = 0;
                for t in &self.tiles {
                    if let Some(a) = t.assignment() {
                        if a.app == app.id {
                            theta += t.retired_window() / window as f64;
                            if t.is_starved() {
                                starved += 1;
                            }
                        }
                    }
                }
                AppPerformance {
                    id: app.id,
                    benchmark: app.benchmark,
                    role: app.role,
                    threads: app.threads,
                    theta,
                    starved_cores: starved,
                }
            })
            .collect();
        let degradation = self.manager.degradation();
        let base = self.window_degradation_base;
        PerformanceReport {
            window_cycles: window,
            apps,
            power_requests_delivered: self.window_requests_delivered,
            power_requests_modified: self.window_requests_modified,
            requests_timed_out: degradation.timeouts - base.timeouts,
            requests_rejected: self.window_requests_rejected,
            requests_clamped: degradation.clamps - base.clamps,
        }
    }

    fn inject_power_requests(&mut self) {
        let manager = self.config.manager;
        let efficiency = self.config.efficiency;
        let mut requests: Vec<(NodeId, u32)> = Vec::new();
        for t in &self.tiles {
            if t.node() == manager {
                continue;
            }
            if let Some(mw) = t.desired_request_mw(&self.model, efficiency) {
                requests.push((t.node(), mw.round() as u32));
            }
        }
        let protection = self.config.protection;
        for (node, mw) in requests {
            let mut packet = Packet::power_request(node, manager, mw);
            if let Some(p) = protection {
                packet = packet.with_options(p.checksum(node.raw(), mw));
            }
            // Back-pressure on the injection queue only delays the request;
            // a full queue (pathological) drops it for this epoch, which the
            // manager tolerates by design.
            let _ = self.net.inject(packet);
        }
    }

    fn run_allocation(&mut self) {
        // Before closing the epoch, note how many expected requesters went
        // silent. A false-data Trojan leaves this at ~0 (stealthy); a
        // packet-drop Trojan lights it up — the paper's stealth argument,
        // measurable.
        let expected = self
            .tiles
            .iter()
            .filter(|t| t.is_assigned() && t.node() != self.config.manager)
            .count();
        self.missing_requesters_last_epoch =
            expected.saturating_sub(self.manager.pending_requests());
        let grants = self.manager.run_epoch(&self.model);
        if let Some(m) = self.metrics.as_deref_mut() {
            let granted: f64 = grants.iter().map(|g| g.milliwatts).sum();
            m.on_epoch(granted, self.manager.budget_mw());
        }
        let manager = self.config.manager;
        for g in grants {
            let _ = self.net.inject(Packet::power_grant(
                manager,
                NodeId(g.core),
                g.milliwatts.round() as u32,
            ));
        }
    }

    fn fire_due_replies(&mut self, cycle: u64) {
        while let Some(&Reverse((fire, _, from, to))) = self.events.peek() {
            if fire > cycle {
                break;
            }
            self.events.pop();
            let _ = self
                .net
                .inject(Packet::new(NodeId(from), NodeId(to), PacketKind::Data, 0));
        }
    }

    fn consume_deliveries(&mut self) {
        let manager = self.config.manager;
        // Take the buffer out so the loop body can borrow `self` mutably;
        // `drain(..)` keeps its capacity for the next epoch.
        let mut delivered = std::mem::take(&mut self.delivered_buf);
        self.net.drain_ejected_into(&mut delivered);
        for d in delivered.drain(..) {
            let p = d.packet;
            match p.kind() {
                PacketKind::PowerReq if p.dst() == manager => {
                    // Infection statistics are taken over the requests the
                    // Trojan is *willing* to tamper with — those from
                    // legitimate applications. Attacker-agent requests are
                    // constitutionally exempt (comparator 3, Fig. 2a) and
                    // counting them would cap the observable rate below 1.
                    let from_victim = self.tiles[p.src().0 as usize]
                        .assignment()
                        .is_none_or(|a| a.role != crate::app::AppRole::Malicious);
                    if from_victim {
                        self.window_requests_delivered += 1;
                        if d.modified {
                            self.window_requests_modified += 1;
                        }
                    }
                    let mut value = f64::from(p.payload());
                    if let Some(guard) = self.config.protection {
                        if guard.verify(p.src().raw(), p.payload(), p.options()) {
                            self.last_good_request[p.src().0 as usize] = Some(value);
                        } else {
                            // Tampered (or mangled) request: discard the
                            // payload and budget on the last authenticated
                            // value from this core, if any.
                            self.window_requests_rejected += 1;
                            self.manager.note_rejected_request();
                            match self.last_good_request[p.src().0 as usize] {
                                Some(good) => value = good,
                                None => continue,
                            }
                        }
                    }
                    self.manager.submit(PowerRequest::new(p.src().raw(), value));
                }
                PacketKind::PowerGrant => {
                    if let Some(m) = self.metrics.as_deref_mut() {
                        m.on_grant(d.latency);
                    }
                    let tile = &mut self.tiles[p.dst().0 as usize];
                    tile.apply_grant(f64::from(p.payload()), &self.model);
                }
                PacketKind::Meta if self.config.detailed_caches => {
                    if p.options() == Some(META_INVALIDATION) {
                        // Directory-initiated invalidation landing at a
                        // sharer: drop the line from its L1.
                        let line = u64::from(p.payload()) << 6;
                        self.tiles[p.dst().0 as usize].l1_invalidate(line);
                    } else {
                        self.serve_l2_request(&p);
                    }
                }
                PacketKind::Data if self.config.detailed_caches => {
                    // A data reply returning to its requester frees an MSHR.
                    self.tiles[p.dst().0 as usize].note_reply();
                }
                PacketKind::Meta => {
                    // Rate-based mode: a shared-L2 request arriving at its
                    // home tile is served after the L2 hit latency, or the
                    // memory latency on a (probabilistic) miss.
                    let miss_rate = self.tiles[p.src().0 as usize]
                        .assignment()
                        .map_or(0.2, |a| a.profile.l2_miss_rate);
                    let delay = if self.rng.gen_bool(miss_rate.clamp(0.0, 1.0)) {
                        self.config.memory_latency
                    } else {
                        self.config.l2_hit_latency
                    };
                    self.event_seq += 1;
                    self.events.push(Reverse((
                        self.net.cycle() + delay,
                        self.event_seq,
                        p.dst().raw(),
                        p.src().raw(),
                    )));
                }
                _ => {}
            }
        }
        self.delivered_buf = delivered;
    }

    /// Serves an L2 request at its home node in detailed mode: consults the
    /// directory (issuing invalidations), looks the line up in the home's
    /// L2 tag store, and schedules the data reply after the hit or memory
    /// latency.
    fn serve_l2_request(&mut self, p: &Packet) {
        let home = p.dst();
        let requester = p.src();
        let is_write = p.payload() & 0x8000_0000 != 0;
        let line = u64::from(p.payload() & 0x7FFF_FFFF) << 6;
        let dir = &mut self.directories[home.0 as usize];
        let action = if is_write {
            dir.write(line, requester.raw())
        } else {
            dir.read(line, requester.raw())
        };
        for sharer in action.invalidate {
            if sharer == requester.raw() {
                continue;
            }
            self.invalidations_sent += 1;
            let _ = self.net.inject(
                Packet::new(home, NodeId(sharer), PacketKind::Meta, (line >> 6) as u32)
                    .with_options(META_INVALIDATION),
            );
        }
        let l2 = &mut self.l2_slices[home.0 as usize];
        let hit = l2.access(line).hit && action.was_tracked;
        let delay = if hit {
            self.config.l2_hit_latency
        } else {
            self.config.memory_latency
        };
        self.event_seq += 1;
        self.events.push(Reverse((
            self.net.cycle() + delay,
            self.event_seq,
            home.raw(),
            requester.raw(),
        )));
    }

    fn tick_tiles(&mut self) {
        let nodes = self.tiles.len();
        let duty = self.config.starvation_duty;
        if self.config.detailed_caches {
            let mshr = self.config.mshr_limit;
            for i in 0..nodes {
                let misses = self.tiles[i].tick_detailed(&self.model, duty, 2, mshr);
                if !self.config.memory_traffic {
                    continue;
                }
                self.tiles[i].note_misses_sent(misses.len() as u32);
                for (addr, is_write) in misses {
                    let line_idx = (addr >> 6) as u32 & 0x7FFF_FFFF;
                    // Home by line-index hash, never the requester itself.
                    let mut home = (line_idx as usize * 0x9E37 + 0x79B9) % nodes;
                    if home == i {
                        home = (home + 1) % nodes;
                    }
                    let payload = line_idx | if is_write { 0x8000_0000 } else { 0 };
                    let _ = self.net.inject(Packet::new(
                        NodeId(i as u16),
                        NodeId(home as u16),
                        PacketKind::Meta,
                        payload,
                    ));
                }
            }
            return;
        }
        for i in 0..nodes {
            let accesses = self.tiles[i].tick(&self.model, duty);
            if !self.config.memory_traffic || accesses == 0 {
                continue;
            }
            // Cap per-tile injections to keep pathological profiles from
            // flooding the injection queue.
            for _ in 0..accesses.min(2) {
                let home = self.rng.gen_range(0..nodes as u16);
                if home == i as u16 {
                    continue;
                }
                let _ = self.net.inject(Packet::new(
                    NodeId(i as u16),
                    NodeId(home),
                    PacketKind::Meta,
                    0,
                ));
            }
        }
    }
}

impl<I: PacketInspector> Drop for ManyCoreSystem<I> {
    fn drop(&mut self) {
        // Auto-absorb at end of life so drivers get campaign-wide totals
        // without threading a call through every code path. A no-op unless
        // metrics were enabled (and not already absorbed explicitly).
        self.absorb_metrics();
    }
}

impl<I: PacketInspector + std::fmt::Debug> std::fmt::Debug for ManyCoreSystem<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManyCoreSystem")
            .field("mesh", &self.config.mesh)
            .field("manager", &self.config.manager)
            .field("cycle", &self.net.cycle())
            .field("apps", &self.workload.apps().len())
            .finish_non_exhaustive()
    }
}

/// Re-exported so builders can speak NoC errors without importing htpb-noc.
#[allow(unused)]
type _NocErrorAlias = NocError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppRole;
    use crate::benchmark::Benchmark;

    fn small_system() -> ManyCoreSystem {
        let mesh = Mesh2d::new(4, 4).unwrap();
        SystemBuilder::new(mesh)
            .workload(
                Workload::new()
                    .app(Benchmark::Blackscholes, 7, AppRole::Legitimate)
                    .app(Benchmark::Canneal, 8, AppRole::Legitimate),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn idle_fast_forward_matches_stepped_run() {
        // An empty workload leaves every tile unassigned, so `run` may
        // fast-forward across dead cycles. The result must be
        // indistinguishable from stepping every cycle.
        let mesh = Mesh2d::new(4, 4).unwrap();
        let build = || SystemBuilder::new(mesh).build().unwrap();
        let mut fast = build();
        fast.run(12_345);
        let mut slow = build();
        for _ in 0..12_345 {
            slow.step();
        }
        assert_eq!(fast.cycle(), 12_345);
        assert_eq!(fast.cycle(), slow.cycle());
        assert_eq!(
            fast.manager().epochs_run(),
            slow.manager().epochs_run(),
            "fast-forward must not skip allocation points"
        );
        assert_eq!(
            fast.network().stats().fingerprint(),
            slow.network().stats().fingerprint()
        );
    }

    #[test]
    fn fast_forward_disabled_with_assigned_tiles() {
        // With a workload mapped, run() and per-cycle step() must remain
        // identical too (no skipping happens; this pins the guard).
        let mut fast = small_system();
        fast.run(2_000);
        let mut slow = small_system();
        for _ in 0..2_000 {
            slow.step();
        }
        assert_eq!(fast.cycle(), slow.cycle());
        assert_eq!(
            fast.network().stats().fingerprint(),
            slow.network().stats().fingerprint()
        );
        assert_eq!(fast.power_draw_mw(), slow.power_draw_mw());
    }

    #[test]
    fn builder_rejects_oversubscription() {
        let mesh = Mesh2d::new(2, 2).unwrap();
        let err = SystemBuilder::new(mesh)
            .workload(Workload::new().app(Benchmark::Vips, 4, AppRole::Legitimate))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ManycoreError::NotEnoughCores {
                requested: 4,
                available: 3
            }
        ));
    }

    #[test]
    fn builder_rejects_manager_outside_mesh() {
        let mesh = Mesh2d::new(2, 2).unwrap();
        let err = SystemBuilder::new(mesh)
            .manager(NodeId(99))
            .build()
            .unwrap_err();
        assert!(matches!(err, ManycoreError::InvalidConfig { .. }));
    }

    #[test]
    fn manager_tile_is_never_assigned() {
        let sys = small_system();
        assert!(!sys.tile(sys.config().manager).is_assigned());
        let assigned = sys.tiles().iter().filter(|t| t.is_assigned()).count();
        assert_eq!(assigned, 15);
    }

    #[test]
    fn epochs_deliver_requests_and_grants() {
        let mut sys = small_system();
        sys.run_epochs(2);
        // All 15 worker requests reached the manager in each epoch.
        assert!(sys.manager().epochs_run() >= 2);
        let summary = sys.manager().last_summary().unwrap();
        assert_eq!(summary.requesters, 15);
        assert!(summary.total_granted_mw <= sys.manager().budget_mw() + 1e-6);
        // Cores got grants: most tiles should have left the bottom level
        // or at least been explicitly granted (budget is scarce but > 0).
        let leveled_up = sys
            .tiles()
            .iter()
            .filter(|t| t.is_assigned() && t.level() > htpb_power::FrequencyLevel::MIN)
            .count();
        assert!(leveled_up > 0, "no tile ever received a useful grant");
    }

    #[test]
    fn cores_retire_instructions() {
        let mut sys = small_system();
        sys.run_epochs(2);
        for t in sys.tiles() {
            if t.is_assigned() {
                assert!(t.retired_total() > 0.0);
            }
        }
    }

    #[test]
    fn performance_report_covers_all_apps() {
        let mut sys = small_system();
        sys.run_epochs(1);
        sys.begin_measurement();
        sys.run_epochs(2);
        let r = sys.performance_report();
        assert_eq!(r.apps.len(), 2);
        assert!(r.apps.iter().all(|a| a.theta > 0.0));
        assert_eq!(r.power_requests_modified, 0);
        assert_eq!(r.infection_rate(), 0.0);
        // Compute-bound blackscholes (7 threads) must out-retire canneal (8)
        // per thread.
        let bs = r.apps[0].theta / r.apps[0].threads as f64;
        let cn = r.apps[1].theta / r.apps[1].threads as f64;
        assert!(bs > cn, "blackscholes {bs} <= canneal {cn}");
    }

    #[test]
    fn scarce_budget_throttles_against_ample() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let workload = || Workload::new().app(Benchmark::Blackscholes, 15, AppRole::Legitimate);
        let mut scarce = SystemBuilder::new(mesh)
            .workload(workload())
            .budget_fraction(0.3)
            .build()
            .unwrap();
        let mut ample = SystemBuilder::new(mesh)
            .workload(workload())
            .budget_fraction(2.0)
            .build()
            .unwrap();
        for sys in [&mut scarce, &mut ample] {
            sys.run_epochs(1);
            sys.begin_measurement();
            sys.run_epochs(2);
        }
        let ts = scarce.performance_report().apps[0].theta;
        let ta = ample.performance_report().apps[0].theta;
        assert!(ta > ts * 1.2, "ample {ta} not faster than scarce {ts}");
    }

    #[test]
    fn memory_traffic_can_be_disabled() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut sys = SystemBuilder::new(mesh)
            .workload(Workload::new().app(Benchmark::Canneal, 8, AppRole::Legitimate))
            .memory_traffic(false)
            .build()
            .unwrap();
        sys.run(500);
        // Only power protocol packets flow: all injected are PowerReq (epoch
        // start) — nothing else.
        let injected = sys.network().stats().injected_packets();
        assert_eq!(injected, 8, "expected only the 8 power requests");
    }

    #[test]
    fn detailed_caches_generate_coherent_traffic() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut sys = SystemBuilder::new(mesh)
            .workload(
                Workload::new()
                    .app(Benchmark::Canneal, 7, AppRole::Legitimate)
                    .app(Benchmark::Dedup, 8, AppRole::Legitimate),
            )
            .detailed_caches(true)
            .build()
            .unwrap();
        assert!(sys
            .tiles()
            .iter()
            .filter(|t| t.is_assigned())
            .all(|t| t.has_detailed_cache()));
        sys.run_epochs(3);
        // Tiles warmed their L1s and the chip carried real L2 traffic.
        let warm = sys
            .tiles()
            .iter()
            .filter(|t| t.is_assigned())
            .filter(|t| t.l1_hit_rate() > 0.3)
            .count();
        assert!(warm >= 10, "only {warm} tiles warmed up");
        // Shared cold region causes cross-tile lines -> some invalidations.
        let delivered = sys.network().stats().delivered_packets();
        assert!(delivered > 100, "almost no traffic: {delivered}");
        // Cores still make progress and the power protocol still works.
        assert!(sys.manager().epochs_run() >= 3);
        for t in sys.tiles() {
            if t.is_assigned() {
                assert!(t.retired_total() > 0.0);
            }
        }
    }

    #[test]
    fn detailed_mode_is_deterministic() {
        let run = || {
            let mesh = Mesh2d::new(4, 4).unwrap();
            let mut sys = SystemBuilder::new(mesh)
                .workload(Workload::new().app(Benchmark::Ferret, 10, AppRole::Legitimate))
                .detailed_caches(true)
                .seed(5)
                .build()
                .unwrap();
            sys.run_epochs(2);
            (
                sys.network().stats().delivered_packets(),
                sys.invalidations_sent(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn power_draw_tracks_grants() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut sys = SystemBuilder::new(mesh)
            .workload(Workload::new().app(Benchmark::Swaptions, 15, AppRole::Legitimate))
            .budget_fraction(0.6)
            .build()
            .unwrap();
        let cold = sys.power_draw_mw();
        sys.run_epochs(3);
        let warm = sys.power_draw_mw();
        assert!(
            warm > cold,
            "grants should raise the draw: {cold} -> {warm}"
        );
        assert!(
            warm <= sys.manager().budget_mw() * 1.05,
            "draw {warm} exceeds budget {}",
            sys.manager().budget_mw()
        );
        assert_eq!(sys.manager().history().len(), 3);
    }

    #[test]
    fn hardened_manager_survives_lossy_transport() {
        // With 20% of packets dropped, an unhardened manager simply sees
        // fewer requesters. A hardened one synthesizes hold-last-grant
        // requests for the silent cores, so the requester count recovers
        // and the degradation counters show up in the report.
        let mesh = Mesh2d::new(4, 4).unwrap();
        let build = |hardened: bool| {
            let mut b = SystemBuilder::new(mesh)
                .workload(Workload::new().app(Benchmark::Blackscholes, 15, AppRole::Legitimate))
                .memory_traffic(false)
                .seed(7);
            if hardened {
                b = b.hardening(HardeningConfig::default());
            }
            let mut sys = b.build().unwrap();
            sys.set_fault_hook(Box::new(
                htpb_faults::FaultPlan::new(0xD1E).with_drops(200_000),
            ));
            sys.run_epochs(1);
            sys.begin_measurement();
            sys.run_epochs(6);
            sys
        };

        let soft = build(false);
        let hard = build(true);
        let soft_requesters = soft.manager().last_summary().unwrap().requesters;
        let hard_requesters = hard.manager().last_summary().unwrap().requesters;
        assert!(
            soft_requesters < 15,
            "drops should cost the unhardened manager requesters"
        );
        assert_eq!(hard_requesters, 15, "hardening must cover silent cores");

        let r = hard.performance_report();
        assert!(r.requests_timed_out > 0, "timeouts should be visible");
        assert_eq!(r.requests_timed_out, r.degradation_total());
        assert_eq!(soft.performance_report().degradation_total(), 0);
    }

    #[test]
    fn metrics_do_not_perturb_the_system() {
        let run = |metrics: bool| {
            let mut sys = small_system();
            if metrics {
                sys.enable_metrics();
            }
            sys.run_epochs(3);
            let fp = sys.network().stats().fingerprint();
            let draw = sys.power_draw_mw();
            (fp, draw, sys.cycle())
        };
        assert_eq!(run(false), run(true));
        // And the instrumented run actually recorded the protocol.
        let mut sys = small_system();
        sys.enable_metrics();
        sys.run_epochs(3);
        let m = sys.sys_metrics().unwrap();
        assert!(m.epochs >= 3, "allocation epochs not observed");
        assert!(m.grant_latency.count() > 0, "no grants observed");
        assert!(
            sys.network().metrics().unwrap().active_router_cycles > 0,
            "NoC metrics not enabled alongside system metrics"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mesh = Mesh2d::new(4, 4).unwrap();
            let mut sys = SystemBuilder::new(mesh)
                .workload(
                    Workload::new()
                        .app(Benchmark::Ferret, 6, AppRole::Legitimate)
                        .app(Benchmark::Dedup, 6, AppRole::Legitimate),
                )
                .seed(42)
                .build()
                .unwrap();
            sys.run_epochs(2);
            let r = sys.performance_report();
            (
                sys.network().stats().delivered_packets(),
                r.apps[0].theta,
                r.apps[1].theta,
            )
        };
        assert_eq!(run(), run());
    }
}
