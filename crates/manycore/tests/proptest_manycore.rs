//! Property-based tests of the many-core system: throughput curves are
//! well-behaved for every benchmark at every operating point, the cache
//! substrate preserves basic invariants, and random workloads always run
//! the budgeting protocol to completion.

use proptest::prelude::*;

use htpb_manycore::{
    AppRole, Benchmark, CacheConfig, Directory, SetAssocCache, SystemBuilder, Workload,
};
use htpb_noc::Mesh2d;
use htpb_power::DvfsTable;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Throughput is positive, strictly increasing in frequency, and IPC
    /// stays within architectural bounds for every benchmark at every
    /// table frequency.
    #[test]
    fn throughput_curves_are_sane(bench in arb_benchmark()) {
        let table = DvfsTable::default_six_level();
        let p = bench.profile();
        let mut last = 0.0;
        for level in table.iter_levels() {
            let f = table.freq_ghz(level);
            let t = p.throughput(f);
            prop_assert!(t > last);
            prop_assert!(t < p.throughput_ceiling());
            prop_assert!(p.ipc(f) > 0.0 && p.ipc(f) < 4.0);
            last = t;
        }
    }

    /// Any feasible random workload runs two epochs with the protocol
    /// completing: correct requester count and budget-bounded grants.
    #[test]
    fn random_workloads_complete_protocol(
        apps in proptest::collection::vec((arb_benchmark(), 1usize..5, any::<bool>()), 1..4),
        budget_fraction in 0.2f64..1.5,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut w = Workload::new();
        let mut threads = 0;
        for (b, t, malicious) in &apps {
            let t = (*t).min(15 - threads);
            if t == 0 {
                break;
            }
            threads += t;
            let role = if *malicious { AppRole::Malicious } else { AppRole::Legitimate };
            w = w.app(*b, t, role);
        }
        prop_assume!(w.total_threads() > 0);
        let expected = w.total_threads();
        let mut sys = SystemBuilder::new(mesh)
            .workload(w)
            .budget_fraction(budget_fraction)
            .seed(seed)
            .build()
            .expect("feasible workload");
        sys.run_epochs(2);
        prop_assert!(sys.manager().epochs_run() >= 2);
        let s = sys.manager().last_summary().expect("epoch ran");
        prop_assert_eq!(s.requesters, expected);
        prop_assert!(s.total_granted_mw <= sys.manager().budget_mw() + 1e-6);
        // Conservation: every assigned tile retired instructions.
        for t in sys.tiles() {
            if t.is_assigned() {
                prop_assert!(t.retired_total() > 0.0);
            }
        }
    }

    /// Cache invariant: after accessing an address, probing it hits until
    /// an eviction or invalidation removes it; hit/miss counters add up.
    #[test]
    fn cache_access_probe_consistency(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig::l1_data());
        for a in &addrs {
            let addr = u64::from(*a);
            c.access(addr);
            prop_assert!(c.probe(addr), "just-accessed line must be present");
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    /// Directory invariant: after any sequence of reads/writes, a line has
    /// at most one owner when Modified, and the sharer set is exactly the
    /// cores whose last access wasn't invalidated.
    #[test]
    fn directory_single_writer(ops in proptest::collection::vec((any::<bool>(), 0u16..8, 0u64..16), 1..100)) {
        let mut d = Directory::new(1024);
        for (is_write, core, line_idx) in ops {
            let line = line_idx * 64;
            if is_write {
                d.write(line, core);
                prop_assert_eq!(d.sharers(line), vec![core], "writer is sole owner");
            } else {
                d.read(line, core);
                prop_assert!(d.sharers(line).contains(&core));
            }
        }
    }
}
