use std::collections::{BTreeMap, BTreeSet};

use htpb_noc::{Mesh2d, NodeId};

/// Outcome of a localization pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalizationReport {
    /// Routers consistent with *every* observation: they lie on at least
    /// one flagged route and on no clean route. The true Trojans are a
    /// subset of this set whenever the observations are consistent.
    pub suspects: Vec<NodeId>,
    /// A minimal explaining set: a greedy set cover of the flagged routes
    /// using only suspects — the cheapest hypothesis for "which routers are
    /// infected".
    pub minimal_explanation: Vec<NodeId>,
    /// Flagged sources whose route contains no suspect (evidence of
    /// inconsistent observations, e.g. an intermittent duty-cycled Trojan
    /// that also let clean requests through the same router).
    pub unexplained: Vec<NodeId>,
}

/// Localizes Trojan-infected routers from which sources' requests arrived
/// tampered and which arrived clean.
///
/// Under deterministic XY routing the route of every request is known to
/// the manager, so each flagged source accuses its whole route and each
/// clean source exonerates its whole route. The intersection logic needs no
/// hardware support beyond the detector feeding it.
///
/// Duty-cycled Trojans blur the picture: a router can carry both a tampered
/// and a clean request in different epochs. Callers should feed
/// *per-epoch* clean sets (only sources observed clean in an epoch where
/// tampering was also observed prove anything) or accept a larger suspect
/// set.
#[derive(Debug, Clone)]
pub struct TrojanLocalizer {
    mesh: Mesh2d,
    manager: NodeId,
}

impl TrojanLocalizer {
    /// Creates a localizer for a chip with its manager at `manager`.
    #[must_use]
    pub fn new(mesh: Mesh2d, manager: NodeId) -> Self {
        TrojanLocalizer { mesh, manager }
    }

    /// The XY route a request from `src` takes to the manager, excluding
    /// the source's own router (a Trojan there could be detected locally by
    /// the core) — kept inclusive of the manager router.
    fn route(&self, src: NodeId) -> Vec<NodeId> {
        self.mesh.xy_path(src, self.manager)
    }

    /// Runs localization over flagged and clean source sets.
    #[must_use]
    pub fn localize(&self, flagged: &[NodeId], clean: &[NodeId]) -> LocalizationReport {
        let mut exonerated: BTreeSet<NodeId> = BTreeSet::new();
        for src in clean {
            for node in self.route(*src) {
                exonerated.insert(node);
            }
        }
        // Candidate suspects per flagged route.
        let routes: Vec<(NodeId, BTreeSet<NodeId>)> = flagged
            .iter()
            .map(|src| {
                let set: BTreeSet<NodeId> = self
                    .route(*src)
                    .into_iter()
                    .filter(|n| !exonerated.contains(n))
                    .collect();
                (*src, set)
            })
            .collect();
        let mut suspects: BTreeSet<NodeId> = BTreeSet::new();
        for (_, set) in &routes {
            suspects.extend(set.iter().copied());
        }

        // Greedy set cover: repeatedly pick the suspect on the most
        // still-unexplained flagged routes.
        let mut unexplained_routes: Vec<&(NodeId, BTreeSet<NodeId>)> =
            routes.iter().filter(|(_, s)| !s.is_empty()).collect();
        let mut minimal: Vec<NodeId> = Vec::new();
        while !unexplained_routes.is_empty() {
            let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
            for (_, set) in &unexplained_routes {
                for n in set.iter() {
                    *counts.entry(*n).or_default() += 1;
                }
            }
            let Some((&best, _)) = counts
                .iter()
                .max_by_key(|(n, c)| (**c, std::cmp::Reverse(n.0)))
            else {
                break;
            };
            minimal.push(best);
            unexplained_routes.retain(|(_, set)| !set.contains(&best));
        }
        minimal.sort_unstable();

        let unexplained: Vec<NodeId> = routes
            .iter()
            .filter(|(_, set)| set.is_empty())
            .map(|(src, _)| *src)
            .collect();

        LocalizationReport {
            suspects: suspects.into_iter().collect(),
            minimal_explanation: minimal,
            unexplained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mesh2d, TrojanLocalizer, NodeId) {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        (mesh, TrojanLocalizer::new(mesh, manager), manager)
    }

    #[test]
    fn single_trojan_pinned_exactly() {
        let (mesh, loc, manager) = setup();
        // Trojan at one node; flag every source whose route crosses it,
        // mark everyone else clean.
        let trojan = NodeId(20);
        let mut flagged = Vec::new();
        let mut clean = Vec::new();
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            if mesh.xy_path(src, manager).contains(&trojan) {
                flagged.push(src);
            } else {
                clean.push(src);
            }
        }
        let report = loc.localize(&flagged, &clean);
        assert!(report.suspects.contains(&trojan));
        assert!(report.unexplained.is_empty());
        assert!(report.minimal_explanation.contains(&trojan));
        // The minimal explanation should be tiny — ideally exactly the
        // Trojan (plus possibly unresolvable same-route shadows).
        assert!(
            report.minimal_explanation.len() <= 2,
            "{:?}",
            report.minimal_explanation
        );
    }

    #[test]
    fn clean_routes_exonerate() {
        let (_, loc, manager) = setup();
        // Flag one source, and mark a second source sharing most of the
        // route as clean: the shared segment is exonerated.
        let flagged = vec![NodeId(0)];
        let clean = vec![NodeId(1)];
        let report = loc.localize(&flagged, &clean);
        // Node 1's XY route to the center shares everything except node 0
        // itself.
        assert_eq!(report.suspects, vec![NodeId(0)]);
        let _ = manager;
    }

    #[test]
    fn no_flags_no_suspects() {
        let (mesh, loc, manager) = setup();
        let clean: Vec<NodeId> = mesh.iter_nodes().filter(|n| *n != manager).collect();
        let report = loc.localize(&[], &clean);
        assert!(report.suspects.is_empty());
        assert!(report.minimal_explanation.is_empty());
        assert!(report.unexplained.is_empty());
    }

    #[test]
    fn inconsistent_observation_reported_unexplained() {
        let (_, loc, _) = setup();
        // The same source flagged AND clean: its whole route is exonerated,
        // so the flagged route has no candidates left.
        let report = loc.localize(&[NodeId(3)], &[NodeId(3)]);
        assert_eq!(report.unexplained, vec![NodeId(3)]);
        assert!(report.suspects.is_empty());
    }

    #[test]
    fn two_trojans_need_two_explanations() {
        let (mesh, loc, manager) = setup();
        let trojans = [NodeId(1), NodeId(62)];
        let mut flagged = Vec::new();
        let mut clean = Vec::new();
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            let path = mesh.xy_path(src, manager);
            if trojans.iter().any(|t| path.contains(t)) {
                flagged.push(src);
            } else {
                clean.push(src);
            }
        }
        let report = loc.localize(&flagged, &clean);
        for t in trojans {
            assert!(report.suspects.contains(&t), "missing {t}");
        }
        assert!(report.minimal_explanation.len() >= 2);
        assert!(report.unexplained.is_empty());
    }
}
