use htpb_noc::{FnvHashMap, NodeId};
use htpb_power::RequestEnvelope;

/// Tuning of the [`RequestAnomalyDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher = faster tracking.
    pub alpha: f64,
    /// A request below `drop_ratio × EWMA` is flagged as anomalous.
    pub drop_ratio: f64,
    /// Number of requests a core must have submitted before the detector
    /// starts judging it (the EWMA needs history to mean anything).
    pub warmup_samples: u32,
    /// Optional plausibility envelope (see
    /// [`htpb_power::PowerModel::request_envelope`]). A request outside it
    /// cannot be honest regardless of history, so it is flagged even during
    /// warmup and never folded into the EWMA. This is the same envelope the
    /// hardened manager clamps against — detector and clamp share one
    /// definition of "plausible".
    pub envelope: Option<RequestEnvelope>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            alpha: 0.25,
            drop_ratio: 0.5,
            warmup_samples: 2,
            envelope: None,
        }
    }
}

impl DetectorConfig {
    /// Builder: attach a plausibility envelope.
    #[must_use]
    pub fn with_envelope(mut self, envelope: RequestEnvelope) -> Self {
        self.envelope = Some(envelope);
        self
    }
}

/// One flagged request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyEvent {
    /// The requesting core.
    pub core: NodeId,
    /// Budgeting epoch in which the anomaly was observed.
    pub epoch: u64,
    /// The suspicious request value (mW).
    pub observed_mw: f64,
    /// The core's EWMA at the time (mW).
    pub expected_mw: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreTrack {
    ewma: f64,
    samples: u32,
}

/// Manager-side statistical tamper detector.
///
/// Power demand is strongly autocorrelated epoch to epoch — an application
/// does not go from asking 2.5 W to asking 0 W in one epoch unless it
/// exited (which the runtime knows) or someone rewrote the packet. The
/// detector keeps a per-core EWMA of requests and flags collapses below a
/// configurable fraction of it. Flagged values are *not* folded into the
/// EWMA, so a sustained attack keeps producing events rather than training
/// the detector to accept the tampered level.
#[derive(Debug, Clone)]
pub struct RequestAnomalyDetector {
    config: DetectorConfig,
    tracks: FnvHashMap<NodeId, CoreTrack>,
    events: Vec<AnomalyEvent>,
}

impl RequestAnomalyDetector {
    /// Creates a detector with the given tuning.
    #[must_use]
    pub fn new(config: DetectorConfig) -> Self {
        RequestAnomalyDetector {
            config,
            tracks: FnvHashMap::default(),
            events: Vec::new(),
        }
    }

    /// Feeds one received request; returns the anomaly event if flagged.
    pub fn observe(&mut self, core: NodeId, epoch: u64, request_mw: f64) -> Option<AnomalyEvent> {
        let track = self.tracks.entry(core).or_default();
        if let Some(env) = self.config.envelope {
            if !env.contains(request_mw) {
                let event = AnomalyEvent {
                    core,
                    epoch,
                    observed_mw: request_mw,
                    expected_mw: track.ewma,
                };
                self.events.push(event);
                return Some(event);
            }
        }
        if track.samples >= self.config.warmup_samples
            && request_mw < self.config.drop_ratio * track.ewma
        {
            let event = AnomalyEvent {
                core,
                epoch,
                observed_mw: request_mw,
                expected_mw: track.ewma,
            };
            self.events.push(event);
            return Some(event);
        }
        track.ewma = if track.samples == 0 {
            request_mw
        } else {
            self.config.alpha * request_mw + (1.0 - self.config.alpha) * track.ewma
        };
        track.samples += 1;
        None
    }

    /// All anomalies flagged so far, in observation order.
    #[must_use]
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Distinct cores flagged at least once.
    #[must_use]
    pub fn flagged_cores(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.events.iter().map(|e| e.core).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Cores the detector has seen but never flagged — the "provably clean"
    /// population the localizer subtracts.
    #[must_use]
    pub fn clean_cores(&self) -> Vec<NodeId> {
        let flagged = self.flagged_cores();
        let mut v: Vec<NodeId> = self
            .tracks
            .keys()
            .copied()
            .filter(|c| !flagged.contains(c))
            .collect();
        v.sort_unstable();
        v
    }

    /// Clears history (e.g. after a mitigation was deployed).
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> RequestAnomalyDetector {
        RequestAnomalyDetector::new(DetectorConfig::default())
    }

    #[test]
    fn steady_requests_never_flagged() {
        let mut d = det();
        for epoch in 0..20 {
            assert!(d.observe(NodeId(1), epoch, 2_500.0).is_none());
        }
        assert!(d.events().is_empty());
        assert_eq!(d.clean_cores(), vec![NodeId(1)]);
    }

    #[test]
    fn zeroed_request_flagged_after_warmup() {
        let mut d = det();
        d.observe(NodeId(1), 0, 2_500.0);
        d.observe(NodeId(1), 1, 2_500.0);
        let e = d.observe(NodeId(1), 2, 0.0).expect("flagged");
        assert_eq!(e.core, NodeId(1));
        assert_eq!(e.epoch, 2);
        assert!((e.expected_mw - 2_500.0).abs() < 1e-9);
        assert_eq!(d.flagged_cores(), vec![NodeId(1)]);
    }

    #[test]
    fn warmup_suppresses_early_alarms() {
        let mut d = det();
        // First two samples are never judged, even if wild.
        assert!(d.observe(NodeId(3), 0, 2_500.0).is_none());
        assert!(d.observe(NodeId(3), 1, 0.0).is_none());
    }

    #[test]
    fn gradual_decline_tracks_without_alarm() {
        let mut d = det();
        let mut v = 2_500.0;
        for epoch in 0..30 {
            assert!(
                d.observe(NodeId(1), epoch, v).is_none(),
                "flagged at {v} mW"
            );
            v *= 0.9; // an app winding down by 10% per epoch is legitimate
        }
    }

    #[test]
    fn flagged_values_do_not_poison_the_ewma() {
        let mut d = det();
        d.observe(NodeId(1), 0, 2_500.0);
        d.observe(NodeId(1), 1, 2_500.0);
        // A sustained attack: every epoch zeroed, every epoch flagged.
        for epoch in 2..12 {
            assert!(
                d.observe(NodeId(1), epoch, 0.0).is_some(),
                "epoch {epoch} not flagged"
            );
        }
        assert_eq!(d.events().len(), 10);
    }

    #[test]
    fn scale_tamper_below_threshold_flagged() {
        let mut d = det();
        d.observe(NodeId(2), 0, 2_000.0);
        d.observe(NodeId(2), 1, 2_000.0);
        // 25%-scale Trojan: 500 < 0.5 * 2000.
        assert!(d.observe(NodeId(2), 2, 500.0).is_some());
        // 60%-scale Trojan evades this threshold (documented residual risk).
        let mut d2 = det();
        d2.observe(NodeId(2), 0, 2_000.0);
        d2.observe(NodeId(2), 1, 2_000.0);
        assert!(d2.observe(NodeId(2), 2, 1_200.0).is_none());
    }

    #[test]
    fn envelope_flags_implausible_requests_even_in_warmup() {
        let model = htpb_power::PowerModel::default_45nm();
        let cfg = DetectorConfig::default().with_envelope(model.request_envelope());
        let mut d = RequestAnomalyDetector::new(cfg);
        // First-ever sample, but physically impossible: flagged anyway.
        assert!(d.observe(NodeId(4), 0, f64::INFINITY).is_some());
        assert!(d.observe(NodeId(4), 0, -10.0).is_some());
        assert!(d
            .observe(NodeId(4), 0, model.peak_power_mw() * 2.0)
            .is_some());
        // Plausible values still enjoy warmup grace and EWMA judgement.
        assert!(d.observe(NodeId(4), 1, 2_000.0).is_none());
        assert!(d.observe(NodeId(4), 2, 2_000.0).is_none());
        assert!(d.observe(NodeId(4), 3, 0.0).is_some());
        // Implausible values never trained the EWMA.
        let e = d.observe(NodeId(4), 4, 0.0).unwrap();
        assert!((e.expected_mw - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = det();
        d.observe(NodeId(1), 0, 2_500.0);
        d.observe(NodeId(1), 1, 2_500.0);
        d.observe(NodeId(1), 2, 0.0);
        d.reset();
        assert!(d.events().is_empty());
        assert!(d.clean_cores().is_empty());
    }
}
