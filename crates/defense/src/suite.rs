use htpb_noc::{Mesh2d, NodeId};

use crate::detector::{DetectorConfig, RequestAnomalyDetector};
use crate::localizer::{LocalizationReport, TrojanLocalizer};
use crate::probe::{ProbeCampaign, ProbePlan};

/// The combined verdict of a defense-suite pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteVerdict {
    /// Cores flagged by the passive EWMA detector.
    pub ewma_flagged: Vec<NodeId>,
    /// Cores whose probes came back altered.
    pub probe_flagged: Vec<NodeId>,
    /// Localization over the union of flagged sources.
    pub localization: LocalizationReport,
    /// Whether any evidence of tampering was found.
    pub compromised: bool,
}

/// A manager-side defense orchestrator combining all three passive/active
/// mechanisms of this crate:
///
/// 1. every received workload request feeds the EWMA
///    [`RequestAnomalyDetector`];
/// 2. delivered probe requests are checked against the keyed
///    [`ProbePlan`];
/// 3. on demand, the accumulated evidence is handed to the
///    [`TrojanLocalizer`], which names suspect routers.
///
/// The suite is transport-agnostic, like [`htpb_power::GlobalManager`]-style
/// components: the system layer feeds it deliveries and asks for verdicts.
#[derive(Debug, Clone)]
pub struct DefenseSuite {
    mesh: Mesh2d,
    /// The manager node the suite defends.
    pub manager: NodeId,
    detector: RequestAnomalyDetector,
    plan: ProbePlan,
    campaign: ProbeCampaign,
}

impl DefenseSuite {
    /// Creates a suite for a chip with the manager at `manager`, probing
    /// under `plan`.
    #[must_use]
    pub fn new(mesh: Mesh2d, manager: NodeId, plan: ProbePlan) -> Self {
        DefenseSuite {
            mesh,
            manager,
            detector: RequestAnomalyDetector::new(DetectorConfig::default()),
            plan,
            campaign: ProbeCampaign::new(),
        }
    }

    /// Overrides the EWMA detector tuning.
    #[must_use]
    pub fn with_detector_config(mut self, config: DetectorConfig) -> Self {
        self.detector = RequestAnomalyDetector::new(config);
        self
    }

    /// The probe value core `core` should send in `epoch` (forwarded to
    /// cooperating cores out of band).
    #[must_use]
    pub fn probe_value(&self, core: NodeId, epoch: u64) -> u32 {
        self.plan.expected(core, epoch)
    }

    /// Feeds a delivered *workload* power request.
    pub fn observe_request(&mut self, core: NodeId, epoch: u64, milliwatts: f64) {
        self.detector.observe(core, epoch, milliwatts);
    }

    /// Feeds a delivered *probe* request.
    pub fn observe_probe(&mut self, core: NodeId, epoch: u64, milliwatts: u32) {
        self.campaign.record(&self.plan, core, epoch, milliwatts);
    }

    /// Produces the combined verdict from all evidence so far.
    #[must_use]
    pub fn verdict(&self) -> SuiteVerdict {
        let ewma_flagged = self.detector.flagged_cores();
        let probe_flagged = self.campaign.tampered_sources();
        let mut flagged: Vec<NodeId> = ewma_flagged.iter().chain(&probe_flagged).copied().collect();
        flagged.sort_unstable();
        flagged.dedup();
        // Clean evidence: sources clean under BOTH mechanisms.
        let probe_clean = self.campaign.clean_sources();
        let detector_clean = self.detector.clean_cores();
        let clean: Vec<NodeId> = probe_clean
            .into_iter()
            .filter(|c| detector_clean.contains(c) || !ewma_flagged.contains(c))
            .filter(|c| !flagged.contains(c))
            .collect();
        let localization = TrojanLocalizer::new(self.mesh, self.manager).localize(&flagged, &clean);
        SuiteVerdict {
            compromised: !flagged.is_empty(),
            ewma_flagged,
            probe_flagged,
            localization,
        }
    }

    /// Clears all accumulated evidence (e.g. after suspects were fused off).
    pub fn reset(&mut self) {
        self.detector.reset();
        self.campaign = ProbeCampaign::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> (Mesh2d, DefenseSuite) {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        (
            mesh,
            DefenseSuite::new(mesh, manager, ProbePlan::default_band(3)),
        )
    }

    #[test]
    fn quiet_chip_yields_clean_verdict() {
        let (mesh, mut s) = suite();
        for epoch in 0..3 {
            for core in mesh.iter_nodes() {
                if core == s.manager {
                    continue;
                }
                s.observe_request(core, epoch, 2_000.0);
                let p = s.probe_value(core, epoch);
                s.observe_probe(core, epoch, p);
            }
        }
        let v = s.verdict();
        assert!(!v.compromised);
        assert!(v.ewma_flagged.is_empty());
        assert!(v.probe_flagged.is_empty());
        assert!(v.localization.suspects.is_empty());
    }

    #[test]
    fn combined_evidence_localizes_a_trojan() {
        let (mesh, mut s) = suite();
        let manager = s.manager;
        let trojan = NodeId(20);
        for epoch in 0..3u64 {
            for core in mesh.iter_nodes() {
                if core == manager {
                    continue;
                }
                let on_route = mesh.xy_path(core, manager).contains(&trojan);
                // Workload request: zeroed on infected routes in epoch 2.
                let value = if on_route && epoch == 2 { 0.0 } else { 2_000.0 };
                s.observe_request(core, epoch, value);
                // Probe: scaled on infected routes.
                let p = s.probe_value(core, epoch);
                let delivered = if on_route { p / 2 } else { p };
                s.observe_probe(core, epoch, delivered);
            }
        }
        let v = s.verdict();
        assert!(v.compromised);
        assert!(!v.ewma_flagged.is_empty());
        assert!(!v.probe_flagged.is_empty());
        assert!(v.localization.suspects.contains(&trojan));
        assert!(v.localization.unexplained.is_empty());
    }

    #[test]
    fn reset_clears_evidence() {
        let (_, mut s) = suite();
        s.observe_request(NodeId(1), 0, 2_000.0);
        s.observe_request(NodeId(1), 1, 2_000.0);
        s.observe_request(NodeId(1), 2, 0.0);
        assert!(s.verdict().compromised);
        s.reset();
        assert!(!s.verdict().compromised);
    }
}
