use htpb_noc::NodeId;

/// Active integrity probing of the request channel.
///
/// The EWMA detector ([`crate::RequestAnomalyDetector`]) catches collapses,
/// but a gentle Trojan (e.g. `ScalePercent(60)`) stays under its threshold.
/// Probing closes that gap: designated cooperating cores send *probe* power
/// requests whose values are derived from a keyed pseudo-random function of
/// `(epoch, core)` that the manager can recompute. Any in-flight
/// modification — however small — makes the delivered value disagree with
/// the expected one, exposing the tampering router's route.
///
/// Unlike the checksum defense (`htpb_manycore::RequestProtection`), probing
/// needs no extra packet field: the probe *is* a plausible power request,
/// indistinguishable from workload traffic to the Trojan's comparators.
/// The price is that probe epochs sacrifice the prober's real request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbePlan {
    key: u64,
    /// Probe values are confined to a plausible request band so the Trojan
    /// cannot distinguish probes statistically.
    min_mw: u32,
    max_mw: u32,
}

impl ProbePlan {
    /// Creates a plan with the given key and plausible request band.
    ///
    /// # Panics
    ///
    /// Panics if the band is empty.
    #[must_use]
    pub fn new(key: u64, min_mw: u32, max_mw: u32) -> Self {
        assert!(min_mw < max_mw, "probe band must be non-empty");
        ProbePlan {
            key,
            min_mw,
            max_mw,
        }
    }

    /// A default band matching the reproduction's per-core power range.
    #[must_use]
    pub fn default_band(key: u64) -> Self {
        ProbePlan::new(key, 400, 2_500)
    }

    /// The probe value core `core` must request in `epoch`.
    #[must_use]
    pub fn expected(&self, core: NodeId, epoch: u64) -> u32 {
        let mut x = self
            .key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(core.raw()) << 32 | epoch);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let span = u64::from(self.max_mw - self.min_mw);
        self.min_mw + (x % span) as u32
    }

    /// Checks a delivered probe; `true` means the channel is clean for this
    /// (core, epoch).
    #[must_use]
    pub fn verify(&self, core: NodeId, epoch: u64, delivered_mw: u32) -> bool {
        self.expected(core, epoch) == delivered_mw
    }
}

/// Manager-side bookkeeping for a probing campaign: which (core, epoch)
/// probes came back clean vs. tampered, feeding the
/// [`crate::TrojanLocalizer`] with high-confidence flagged/clean source
/// sets.
#[derive(Debug, Clone, Default)]
pub struct ProbeCampaign {
    clean: Vec<NodeId>,
    tampered: Vec<NodeId>,
}

impl ProbeCampaign {
    /// Creates an empty campaign record.
    #[must_use]
    pub fn new() -> Self {
        ProbeCampaign::default()
    }

    /// Records one delivered probe against the plan.
    pub fn record(&mut self, plan: &ProbePlan, core: NodeId, epoch: u64, delivered_mw: u32) {
        if plan.verify(core, epoch, delivered_mw) {
            self.clean.push(core);
        } else {
            self.tampered.push(core);
        }
    }

    /// Sources whose probes all came back clean (deduplicated; a source
    /// with any tampered probe is excluded — duty-cycled Trojans make a
    /// source look clean in some epochs).
    #[must_use]
    pub fn clean_sources(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .clean
            .iter()
            .copied()
            .filter(|c| !self.tampered.contains(c))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Sources with at least one tampered probe (deduplicated).
    #[must_use]
    pub fn tampered_sources(&self) -> Vec<NodeId> {
        let mut v = self.tampered.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total probes recorded.
    #[must_use]
    pub fn probes_recorded(&self) -> usize {
        self.clean.len() + self.tampered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_values_stay_in_band_and_vary() {
        let plan = ProbePlan::default_band(42);
        let mut distinct = std::collections::BTreeSet::new();
        for core in 0..32u16 {
            for epoch in 0..8u64 {
                let v = plan.expected(NodeId(core), epoch);
                assert!((400..2_500).contains(&v));
                distinct.insert(v);
            }
        }
        assert!(distinct.len() > 200, "probe values too repetitive");
    }

    #[test]
    fn verify_accepts_exact_and_rejects_any_change() {
        let plan = ProbePlan::default_band(7);
        let v = plan.expected(NodeId(3), 11);
        assert!(plan.verify(NodeId(3), 11, v));
        assert!(!plan.verify(NodeId(3), 11, 0));
        assert!(!plan.verify(NodeId(3), 11, v - 1));
        // A 60%-scale Trojan that evades the EWMA detector is caught.
        assert!(!plan.verify(NodeId(3), 11, (u64::from(v) * 60 / 100) as u32));
    }

    #[test]
    fn different_keys_give_different_schedules() {
        let a = ProbePlan::default_band(1);
        let b = ProbePlan::default_band(2);
        let same = (0..64u64)
            .filter(|e| a.expected(NodeId(0), *e) == b.expected(NodeId(0), *e))
            .count();
        assert!(same < 8, "schedules should diverge: {same}/64 equal");
    }

    #[test]
    fn campaign_partitions_sources() {
        let plan = ProbePlan::default_band(9);
        let mut c = ProbeCampaign::new();
        // Core 1 clean in both epochs; core 2 tampered once (duty-cycled).
        c.record(&plan, NodeId(1), 0, plan.expected(NodeId(1), 0));
        c.record(&plan, NodeId(1), 1, plan.expected(NodeId(1), 1));
        c.record(&plan, NodeId(2), 0, plan.expected(NodeId(2), 0));
        c.record(&plan, NodeId(2), 1, 0);
        assert_eq!(c.clean_sources(), vec![NodeId(1)]);
        assert_eq!(c.tampered_sources(), vec![NodeId(2)]);
        assert_eq!(c.probes_recorded(), 4);
    }

    #[test]
    #[should_panic(expected = "probe band must be non-empty")]
    fn empty_band_rejected() {
        let _ = ProbePlan::new(0, 100, 100);
    }
}
