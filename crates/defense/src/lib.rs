//! Detection and localization countermeasures against the power-budget
//! hardware Trojan.
//!
//! The paper closes with "more research on detection and protection against
//! such attacks is needed" (Section VI). This crate implements that future
//! work at the level the attack operates on:
//!
//! - [`RequestAnomalyDetector`] — a manager-side statistical monitor: each
//!   core's request stream is tracked with an exponentially weighted moving
//!   average; a request that collapses far below the core's own history is
//!   flagged. Zeroing and aggressive down-scaling Trojans light up
//!   immediately; the detector needs no cryptography and no protocol
//!   changes.
//! - [`ProbePlan`] / [`ProbeCampaign`] — active probing: cooperating cores
//!   send requests whose values follow a keyed pseudo-random schedule the
//!   manager can recompute, so *any* in-flight modification — including the
//!   gentle scaling that slips under the EWMA threshold — is caught,
//!   without adding a single bit to the packet format.
//! - [`TrojanLocalizer`] — turns detector output into *where*: tampered
//!   requests travelled some route to the manager, so the infected routers
//!   lie on the intersection of the flagged sources' routes minus routers
//!   that clean requests provably traversed. A greedy set-cover pass
//!   recovers a minimal set of suspects that explains every flagged route.
//!
//! For the *prevention* side (keyed checksums over the packet's OPTIONS
//! field), see `htpb_manycore::RequestProtection` — the two compose: the
//! checksum neutralises the attack while the localizer pinpoints which
//! routers to fuse off. [`DefenseSuite`] bundles detector, probing and
//! localization behind one manager-side facade:
//!
//! ```
//! use htpb_defense::{DefenseSuite, ProbePlan};
//! use htpb_noc::{Mesh2d, NodeId};
//!
//! let mesh = Mesh2d::new(4, 4).unwrap();
//! let mut suite = DefenseSuite::new(mesh, mesh.center(), ProbePlan::default_band(7));
//! // A request stream that collapses is flagged and localized.
//! suite.observe_request(NodeId(3), 0, 2_000.0);
//! suite.observe_request(NodeId(3), 1, 2_000.0);
//! suite.observe_request(NodeId(3), 2, 0.0);
//! assert!(suite.verdict().compromised);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod localizer;
mod probe;
mod suite;

pub use detector::{AnomalyEvent, DetectorConfig, RequestAnomalyDetector};
pub use localizer::{LocalizationReport, TrojanLocalizer};
pub use probe::{ProbeCampaign, ProbePlan};
pub use suite::{DefenseSuite, SuiteVerdict};
