//! Property-based tests of the defense layer: with complete, consistent
//! observations the localizer is *sound* (every true Trojan is in the
//! suspect set) and the minimal explanation covers all evidence; the probe
//! plan detects every payload modification.

use proptest::prelude::*;

use htpb_defense::{ProbePlan, TrojanLocalizer};
use htpb_noc::{Mesh2d, NodeId};

fn arb_mesh() -> impl Strategy<Value = Mesh2d> {
    (3u16..=8, 3u16..=8).prop_map(|(w, h)| Mesh2d::new(w, h).expect("valid dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: given *complete* observations (every source classified
    /// correctly), every true Trojan that lies on at least one flagged
    /// route appears in the suspect set, and nothing is unexplained.
    #[test]
    fn localizer_is_sound_under_complete_observations(
        mesh in arb_mesh(),
        trojan_seeds in proptest::collection::btree_set(0u32..64, 1..4),
    ) {
        let manager = mesh.center();
        let trojans: Vec<NodeId> = trojan_seeds
            .into_iter()
            .map(|s| NodeId((s % mesh.nodes()) as u16))
            .filter(|n| *n != manager)
            .collect();
        prop_assume!(!trojans.is_empty());
        let mut flagged = Vec::new();
        let mut clean = Vec::new();
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            if mesh.xy_path(src, manager).iter().any(|n| trojans.contains(n)) {
                flagged.push(src);
            } else {
                clean.push(src);
            }
        }
        let report = TrojanLocalizer::new(mesh, manager).localize(&flagged, &clean);
        prop_assert!(report.unexplained.is_empty());
        // Soundness for every trojan that actually produced evidence.
        for t in &trojans {
            let produced_evidence = flagged
                .iter()
                .any(|src| mesh.xy_path(*src, manager).contains(t));
            if produced_evidence {
                prop_assert!(
                    report.suspects.contains(t),
                    "trojan {t} missing from suspects {:?}",
                    report.suspects
                );
            }
        }
        // The minimal explanation covers every flagged route.
        for src in &flagged {
            let path = mesh.xy_path(*src, manager);
            prop_assert!(
                report
                    .minimal_explanation
                    .iter()
                    .any(|n| path.contains(n)),
                "flagged source {src} unexplained by {:?}",
                report.minimal_explanation
            );
        }
    }

    /// Suspects never include exonerated routers: any router on a clean
    /// route is absent from the suspect set.
    #[test]
    fn localizer_never_accuses_exonerated_routers(
        mesh in arb_mesh(),
        flagged_seed in 0u32..64,
        clean_seed in 0u32..64,
    ) {
        let manager = mesh.center();
        let flagged = NodeId((flagged_seed % mesh.nodes()) as u16);
        let clean = NodeId((clean_seed % mesh.nodes()) as u16);
        prop_assume!(flagged != manager && clean != manager && flagged != clean);
        let report =
            TrojanLocalizer::new(mesh, manager).localize(&[flagged], &[clean]);
        for n in mesh.xy_path(clean, manager) {
            prop_assert!(
                !report.suspects.contains(&n),
                "exonerated router {n} accused"
            );
        }
    }

    /// The probe plan flags *every* modified delivery and accepts *only*
    /// the exact expected value.
    #[test]
    fn probe_detects_all_modifications(
        key in any::<u64>(),
        core in 0u16..512,
        epoch in 0u64..1000,
        delta in 1u32..10_000,
    ) {
        let plan = ProbePlan::default_band(key);
        let v = plan.expected(NodeId(core), epoch);
        prop_assert!(plan.verify(NodeId(core), epoch, v));
        prop_assert!(!plan.verify(NodeId(core), epoch, v.wrapping_add(delta)));
        prop_assert!(!plan.verify(NodeId(core), epoch, v.wrapping_sub(delta)));
    }
}
