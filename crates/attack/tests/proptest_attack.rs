//! Property-based tests of the attack-model layer: the analytic infection
//! estimator agrees with a brute-force recomputation, placement metrics
//! satisfy their geometric invariants, and the optimizer never loses to
//! the strategies it enumerates.

use proptest::prelude::*;

use htpb_attack::{
    analytic_infection_rate, density_eta, distance_rho, virtual_center, AttackSurface, Placement,
    PlacementOptimizer, PlacementStrategy,
};
use htpb_noc::{Mesh2d, NodeId};

fn arb_mesh() -> impl Strategy<Value = Mesh2d> {
    (3u16..=8, 3u16..=8).prop_map(|(w, h)| Mesh2d::new(w, h).expect("valid dims"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytic estimator equals the brute-force definition: the
    /// fraction of sources whose XY path intersects the Trojan set.
    #[test]
    fn analytic_matches_bruteforce(
        mesh in arb_mesh(),
        seeds in proptest::collection::btree_set(0u32..256, 0..8),
    ) {
        let manager = mesh.center();
        let trojans: Vec<NodeId> = seeds
            .into_iter()
            .map(|s| NodeId((s % mesh.nodes()) as u16))
            .collect();
        let estimate = analytic_infection_rate(mesh, manager, &trojans, None);
        let mut infected = 0u32;
        let mut sources = 0u32;
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            sources += 1;
            if mesh
                .xy_path(src, manager)
                .iter()
                .any(|n| trojans.contains(n))
            {
                infected += 1;
            }
        }
        let brute = f64::from(infected) / f64::from(sources);
        prop_assert!((estimate - brute).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&estimate));
    }

    /// Geometric invariants of Definitions 6-8: the virtual center lies in
    /// the placement's bounding box; rho is within the triangle inequality
    /// of any member's distance; eta is bounded by the max spread.
    #[test]
    fn placement_metric_invariants(
        mesh in arb_mesh(),
        m in 1usize..10,
        seed in any::<u64>(),
    ) {
        let manager = mesh.center();
        let p = Placement::generate(mesh, m, &PlacementStrategy::Random { seed }, &[]);
        prop_assume!(!p.is_empty());
        let (wx, wy) = virtual_center(mesh, p.nodes()).unwrap();
        let xs: Vec<f64> = p.nodes().iter().map(|n| mesh.coord(*n).x as f64).collect();
        let ys: Vec<f64> = p.nodes().iter().map(|n| mesh.coord(*n).y as f64).collect();
        let (xmin, xmax) = (xs.iter().cloned().fold(f64::MAX, f64::min), xs.iter().cloned().fold(f64::MIN, f64::max));
        let (ymin, ymax) = (ys.iter().cloned().fold(f64::MAX, f64::min), ys.iter().cloned().fold(f64::MIN, f64::max));
        prop_assert!((xmin..=xmax).contains(&wx));
        prop_assert!((ymin..=ymax).contains(&wy));

        let rho = distance_rho(mesh, p.nodes(), manager).unwrap();
        let eta = density_eta(mesh, p.nodes()).unwrap();
        prop_assert!(rho >= 0.0 && eta >= 0.0);
        // Triangle inequality: rho <= member distance + member spread.
        for n in p.nodes() {
            let d = mesh.distance(*n, manager) as f64;
            let c = mesh.coord(*n);
            let spread = (c.x as f64 - wx).abs() + (c.y as f64 - wy).abs();
            prop_assert!(rho <= d + spread + 1e-9);
        }
        // Single-node placements are perfectly dense.
        if p.len() == 1 {
            prop_assert!(eta.abs() < 1e-12);
        }
    }

    /// The optimizer's result is at least as infectious as any placement
    /// strategy it claims to dominate, for the same budget.
    #[test]
    fn optimizer_dominates_fixed_strategies(
        mesh in arb_mesh(),
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let manager = mesh.center();
        let opt = PlacementOptimizer::new(mesh, manager, m)
            .exclude(&[manager])
            .optimize();
        for strategy in [
            PlacementStrategy::CenterCluster,
            PlacementStrategy::CornerCluster,
            PlacementStrategy::Random { seed },
        ] {
            let p = Placement::generate(mesh, m, &strategy, &[manager]);
            let rate = analytic_infection_rate(mesh, manager, p.nodes(), None);
            prop_assert!(
                opt.infection >= rate - 1e-12,
                "optimizer {} lost to {strategy:?} at {rate}",
                opt.infection
            );
        }
    }

    /// Attack-surface criticality is consistent with the analytic
    /// single-Trojan infection rate (they are the same quantity).
    #[test]
    fn surface_equals_single_trojan_infection(mesh in arb_mesh(), node_seed in 0u32..256) {
        let manager = mesh.center();
        let node = NodeId((node_seed % mesh.nodes()) as u16);
        prop_assume!(node != manager);
        let surface = AttackSurface::compute(mesh, manager);
        let infection = analytic_infection_rate(mesh, manager, &[node], None);
        prop_assert!((surface.criticality(node) - infection).abs() < 1e-12);
    }
}
