//! Minimal dense linear algebra for ordinary least squares: normal
//! equations solved by Gaussian elimination with partial pivoting.

/// Solves `A x = b` for square `A` (row-major, `n × n`) in place.
/// Returns `None` if `A` is (numerically) singular.
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        for v in a[col][col..n].iter_mut() {
            *v /= d;
        }
        b[col] /= d;
        let pivot_row = a[col].clone(); // tiny systems; clearer than split borrows
        for row in 0..n {
            if row != col {
                let factor = a[row][col];
                if factor != 0.0 {
                    for (t, p) in a[row][col..n].iter_mut().zip(&pivot_row[col..n]) {
                        *t -= factor * p;
                    }
                    b[row] -= factor * b[col];
                }
            }
        }
    }
    Some(b)
}

/// Ordinary least squares: finds `w` minimising `‖X w − y‖²` via the normal
/// equations `XᵀX w = Xᵀy`, with a small ridge term for numerical safety on
/// collinear designs. Returns `None` when the system is degenerate.
pub(crate) fn least_squares(x: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let rows = x.len();
    if rows == 0 || rows != y.len() {
        return None;
    }
    let cols = x[0].len();
    if cols == 0 || x.iter().any(|r| r.len() != cols) {
        return None;
    }
    let mut xtx = vec![vec![0.0; cols]; cols];
    let mut xty = vec![0.0; cols];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..cols {
            xty[i] += row[i] * yi;
            for j in i..cols {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        let (above, rest) = xtx.split_at_mut(i);
        let row = &mut rest[0];
        for (j, upper_row) in above.iter().enumerate() {
            row[j] = upper_row[i]; // mirror the upper triangle
        }
        row[i] += 1e-9; // ridge for collinear designs
    }
    solve(xtx, xty)
}

/// Coefficient of determination R² of predictions `yhat` against `y`.
/// Returns 1.0 for a constant target perfectly predicted, 0.0 for a
/// constant target mispredicted.
pub(crate) fn r_squared(y: &[f64], yhat: &[f64]) -> f64 {
    debug_assert_eq!(y.len(), yhat.len());
    let n = y.len() as f64;
    if y.is_empty() {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / n;
    let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = y.iter().zip(yhat).map(|(v, p)| (v - p).powi(2)).sum();
    if ss_tot < 1e-15 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; plain elimination would divide by zero.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let x = solve(a, vec![1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 2 + 3x, design [1, x].
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let w = least_squares(&x, &y).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] - 3.0).abs() < 1e-6);
        let yhat: Vec<f64> = x.iter().map(|r| w[0] + w[1] * r[1]).collect();
        assert!(r_squared(&y, &yhat) > 0.999999);
    }

    #[test]
    fn least_squares_on_noisy_data_fits_approximately() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| 1.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let w = least_squares(&x, &y).unwrap();
        assert!((w[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let y = vec![1.0, 2.0, 3.0];
        let yhat = vec![2.0, 2.0, 2.0];
        assert!(r_squared(&y, &yhat).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(least_squares(&[], &[]).is_none());
        assert!(least_squares(&[vec![1.0]], &[1.0, 2.0]).is_none());
    }
}
