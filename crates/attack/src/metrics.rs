//! Definitions 1–5 of the paper: performance, performance change, attack
//! effect and power-budget sensitivity.

use htpb_manycore::{AppId, AppRole, BenchmarkProfile, PerformanceReport};
use htpb_power::DvfsTable;

/// The paper's Definition 2 — application `k`'s performance change
/// `Θ_k = θ_k / Λ_k`, where `θ_k` is measured under attack and `Λ_k` on the
/// clean chip.
///
/// Returns `None` when the clean baseline is zero (the app never ran) or
/// the app is missing from either report.
#[must_use]
pub fn performance_change(
    under_attack: &PerformanceReport,
    clean: &PerformanceReport,
    app: AppId,
) -> Option<f64> {
    let theta = under_attack.app(app)?.theta;
    let lambda = clean.app(app)?.theta;
    (lambda > 0.0).then(|| theta / lambda)
}

/// The paper's Definition 3 — the attack effect
/// `Q(Δ, Γ) = (V · Σ_{a∈Δ} Θ_a) / (A · Σ_{v∈Γ} Θ_v)`,
/// where `Δ`/`Γ` are the attacker/victim application sets and `A`/`V` their
/// cardinalities. On a clean chip every `Θ` is 1 and `Q = 1`; the larger
/// `Q`, the stronger the attack.
///
/// Roles are taken from the reports (applications marked
/// [`AppRole::Malicious`] form Δ). Returns `None` if either set is empty or
/// any baseline θ is zero.
#[must_use]
pub fn attack_effect(under_attack: &PerformanceReport, clean: &PerformanceReport) -> Option<f64> {
    let mut sum_attackers = 0.0;
    let mut sum_victims = 0.0;
    let mut attackers = 0usize;
    let mut victims = 0usize;
    for app in &under_attack.apps {
        let change = performance_change(under_attack, clean, app.id)?;
        match app.role {
            AppRole::Malicious => {
                sum_attackers += change;
                attackers += 1;
            }
            AppRole::Legitimate => {
                sum_victims += change;
                victims += 1;
            }
        }
    }
    if attackers == 0 || victims == 0 || sum_victims <= 0.0 {
        return None;
    }
    Some((victims as f64 * sum_attackers) / (attackers as f64 * sum_victims))
}

/// The paper's Definitions 4–5 — power-budget sensitivity
/// `φ(j, z) = Σ_{i=1}^{s-1} |IPC(j, z, τ_i) − IPC(j, z, τ_{i+1})| / |τ_i − τ_{i+1}|`.
///
/// `IPC` here is measured against the chip's fixed reference clock (the
/// 1 GHz NoC clock), i.e. instructions per nanosecond at the operating
/// point — the same quantity whose sum Definition 1 calls θ. Under this
/// reading a compute-bound application (throughput ∝ f) has high
/// sensitivity and a memory-saturated one low sensitivity, matching the
/// paper's discussion ("performance of an instruction-bounded application
/// is typically hit harder than that of memory-bounded applications",
/// Section IV).
///
/// Because every core running application `z` shares the same profile,
/// `Φ_k` (Definition 5, the per-application mean over cores) equals
/// `φ(j, k)` and this function serves for both.
#[must_use]
pub fn sensitivity_phi(profile: &BenchmarkProfile, table: &DvfsTable) -> f64 {
    let mut phi = 0.0;
    let levels: Vec<f64> = table.iter_levels().map(|l| table.freq_ghz(l)).collect();
    for pair in levels.windows(2) {
        let (f1, f2) = (pair[0], pair[1]);
        phi += (profile.throughput(f1) - profile.throughput(f2)).abs() / (f1 - f2).abs();
    }
    phi
}

/// A bundled attack-vs-baseline comparison: per-application performance
/// changes plus the aggregate Q value, as plotted in Fig. 5 and Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Measured infection rate of the attacked run.
    pub infection_rate: f64,
    /// Per-application Θ values (id order follows the report).
    pub changes: Vec<(AppId, AppRole, f64)>,
    /// The attack effect Q(Δ, Γ).
    pub q_value: f64,
}

impl AttackOutcome {
    /// Builds the outcome from an attacked report and its clean baseline.
    ///
    /// Returns `None` under the same conditions as [`attack_effect`].
    #[must_use]
    pub fn compare(under_attack: &PerformanceReport, clean: &PerformanceReport) -> Option<Self> {
        let q_value = attack_effect(under_attack, clean)?;
        let mut changes = Vec::with_capacity(under_attack.apps.len());
        for app in &under_attack.apps {
            changes.push((
                app.id,
                app.role,
                performance_change(under_attack, clean, app.id)?,
            ));
        }
        Some(AttackOutcome {
            infection_rate: under_attack.infection_rate(),
            changes,
            q_value,
        })
    }

    /// Θ of the best-performing attacker.
    #[must_use]
    pub fn max_attacker_gain(&self) -> f64 {
        self.changes
            .iter()
            .filter(|(_, r, _)| *r == AppRole::Malicious)
            .map(|(_, _, c)| *c)
            .fold(0.0, f64::max)
    }

    /// Θ of the worst-hit victim.
    #[must_use]
    pub fn min_victim_change(&self) -> f64 {
        self.changes
            .iter()
            .filter(|(_, r, _)| *r == AppRole::Legitimate)
            .map(|(_, _, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_manycore::{AppPerformance, Benchmark};

    fn report(thetas: &[(AppRole, f64)], delivered: u64, modified: u64) -> PerformanceReport {
        PerformanceReport {
            window_cycles: 1_000,
            apps: thetas
                .iter()
                .enumerate()
                .map(|(i, (role, theta))| AppPerformance {
                    id: AppId(i as u16),
                    benchmark: Benchmark::Vips,
                    role: *role,
                    threads: 4,
                    theta: *theta,
                    starved_cores: 0,
                })
                .collect(),
            power_requests_delivered: delivered,
            power_requests_modified: modified,
            requests_timed_out: 0,
            requests_rejected: 0,
            requests_clamped: 0,
        }
    }

    #[test]
    fn clean_chip_q_is_one() {
        let clean = report(
            &[(AppRole::Malicious, 4.0), (AppRole::Legitimate, 2.0)],
            10,
            0,
        );
        assert!((attack_effect(&clean, &clean).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn q_matches_hand_computation() {
        // Mix-4 shape: 3 attackers, 1 victim.
        let clean = report(
            &[
                (AppRole::Malicious, 2.0),
                (AppRole::Malicious, 2.0),
                (AppRole::Malicious, 2.0),
                (AppRole::Legitimate, 2.0),
            ],
            10,
            0,
        );
        let attacked = report(
            &[
                (AppRole::Malicious, 2.6), // Θ = 1.3
                (AppRole::Malicious, 2.6),
                (AppRole::Malicious, 2.6),
                (AppRole::Legitimate, 0.4), // Θ = 0.2
            ],
            10,
            9,
        );
        // Q = (1 * 3.9) / (3 * 0.2) = 6.5
        let q = attack_effect(&attacked, &clean).unwrap();
        assert!((q - 6.5).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn performance_change_requires_positive_baseline() {
        let clean = report(&[(AppRole::Legitimate, 0.0)], 0, 0);
        let attacked = report(&[(AppRole::Legitimate, 1.0)], 0, 0);
        assert_eq!(performance_change(&attacked, &clean, AppId(0)), None);
        assert_eq!(performance_change(&attacked, &clean, AppId(7)), None);
    }

    #[test]
    fn attack_effect_requires_both_sets() {
        let only_victims = report(
            &[(AppRole::Legitimate, 1.0), (AppRole::Legitimate, 1.0)],
            0,
            0,
        );
        assert_eq!(attack_effect(&only_victims, &only_victims), None);
    }

    #[test]
    fn sensitivity_orders_compute_vs_memory_bound() {
        let table = DvfsTable::default_six_level();
        let compute = sensitivity_phi(&Benchmark::Blackscholes.profile(), &table);
        let memory = sensitivity_phi(&Benchmark::Canneal.profile(), &table);
        assert!(
            compute > memory * 1.5,
            "blackscholes {compute} vs canneal {memory}"
        );
        // Sensitivity of the perfectly linear profile approaches
        // (s-1) * slope; both are positive.
        assert!(memory > 0.0);
    }

    #[test]
    fn outcome_extracts_extremes() {
        let clean = report(
            &[
                (AppRole::Malicious, 2.0),
                (AppRole::Legitimate, 2.0),
                (AppRole::Legitimate, 2.0),
            ],
            10,
            0,
        );
        let attacked = report(
            &[
                (AppRole::Malicious, 2.4),
                (AppRole::Legitimate, 1.2),
                (AppRole::Legitimate, 1.6),
            ],
            10,
            5,
        );
        let o = AttackOutcome::compare(&attacked, &clean).unwrap();
        assert!((o.max_attacker_gain() - 1.2).abs() < 1e-12);
        assert!((o.min_victim_change() - 0.6).abs() < 1e-12);
        assert!((o.infection_rate - 0.5).abs() < 1e-12);
        assert!(o.q_value > 1.0);
    }
}
