//! Trojan placement strategies and the spatial metrics of Definitions 6–8:
//! the HTs' virtual center ω, its Manhattan distance ρ to the global
//! manager, and the HT density η.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use htpb_noc::{Coord, Mesh2d, NodeId};

/// The HT distributions compared in Fig. 4 of the paper, plus explicit
/// placements for the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// HTs packed as closely as possible around the chip center
    /// (Fig. 4 case i).
    CenterCluster,
    /// HTs drawn uniformly at random over the mesh (Fig. 4 case ii).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// HTs packed into the corner at (0, 0) (Fig. 4 case iii).
    CornerCluster,
    /// HTs packed as closely as possible around an arbitrary anchor node.
    ClusterAround {
        /// Cluster anchor.
        anchor: NodeId,
    },
    /// An explicit, caller-chosen set of nodes.
    Explicit(Vec<NodeId>),
}

/// A concrete placement of `m` Trojans on a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    nodes: Vec<NodeId>,
}

impl Placement {
    /// Materialises `strategy` for `m` Trojans on `mesh`, never placing a
    /// Trojan in the `excluded` nodes (typically the global manager's
    /// router, whose modification would be pointless, and the attacker's
    /// own node).
    ///
    /// Cluster strategies pick the `m` non-excluded nodes closest to the
    /// anchor (ties broken by node id), so `m` up to the mesh size is
    /// always satisfiable.
    #[must_use]
    pub fn generate(
        mesh: Mesh2d,
        m: usize,
        strategy: &PlacementStrategy,
        excluded: &[NodeId],
    ) -> Self {
        let is_excluded = |n: NodeId| excluded.contains(&n);
        let nodes = match strategy {
            PlacementStrategy::CenterCluster => {
                let anchor = mesh.center();
                Self::closest_to(mesh, anchor, m, &is_excluded)
            }
            PlacementStrategy::CornerCluster => {
                Self::closest_to(mesh, mesh.corner(), m, &is_excluded)
            }
            PlacementStrategy::ClusterAround { anchor } => {
                Self::closest_to(mesh, *anchor, m, &is_excluded)
            }
            PlacementStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut pool: Vec<NodeId> =
                    mesh.iter_nodes().filter(|n| !is_excluded(*n)).collect();
                pool.shuffle(&mut rng);
                pool.truncate(m);
                pool.sort_unstable();
                pool
            }
            PlacementStrategy::Explicit(list) => {
                let mut v: Vec<NodeId> = list
                    .iter()
                    .copied()
                    .filter(|n| mesh.contains(*n) && !is_excluded(*n))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        };
        Placement { nodes }
    }

    fn closest_to(
        mesh: Mesh2d,
        anchor: NodeId,
        m: usize,
        is_excluded: &dyn Fn(NodeId) -> bool,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = mesh.iter_nodes().filter(|n| !is_excluded(*n)).collect();
        pool.sort_by_key(|n| (mesh.distance(*n, anchor), n.0));
        pool.truncate(m);
        pool.sort_unstable();
        pool
    }

    /// The infected nodes, ascending.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of Trojans `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no Trojan is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Definition 6: the virtual center ω of the placement in continuous
    /// mesh coordinates. `None` for an empty placement.
    #[must_use]
    pub fn virtual_center(&self, mesh: Mesh2d) -> Option<(f64, f64)> {
        virtual_center(mesh, &self.nodes)
    }

    /// Definition 7: Manhattan distance ρ between the global manager and
    /// the virtual center. `None` for an empty placement.
    #[must_use]
    pub fn distance_rho(&self, mesh: Mesh2d, manager: NodeId) -> Option<f64> {
        distance_rho(mesh, &self.nodes, manager)
    }

    /// Definition 8: density η — mean Manhattan distance from the virtual
    /// center to each Trojan (lower = denser). `None` for an empty
    /// placement.
    #[must_use]
    pub fn density_eta(&self, mesh: Mesh2d) -> Option<f64> {
        density_eta(mesh, &self.nodes)
    }
}

/// Definition 6 — the coordinates of the malicious nodes' virtual center:
/// `ω_X = Σ X_i / m`, `ω_Y = Σ Y_i / m`.
#[must_use]
pub fn virtual_center(mesh: Mesh2d, nodes: &[NodeId]) -> Option<(f64, f64)> {
    if nodes.is_empty() {
        return None;
    }
    let m = nodes.len() as f64;
    let (sx, sy) = nodes.iter().fold((0.0, 0.0), |(sx, sy), n| {
        let c = mesh.coord(*n);
        (sx + c.x as f64, sy + c.y as f64)
    });
    Some((sx / m, sy / m))
}

/// Definition 7 — `ρ = MD(O, Ω)`: Manhattan distance between the global
/// manager `O` and the HTs' virtual center `Ω` (continuous, since the
/// virtual center need not fall on a node).
#[must_use]
pub fn distance_rho(mesh: Mesh2d, nodes: &[NodeId], manager: NodeId) -> Option<f64> {
    let (wx, wy) = virtual_center(mesh, nodes)?;
    let o = mesh.coord(manager);
    Some((wx - o.x as f64).abs() + (wy - o.y as f64).abs())
}

/// Definition 8 — `η = Σ MD(Ω, M_i) / m`: the mean Manhattan distance from
/// the virtual center to each malicious node. The paper calls this the HT
/// *density*; a **smaller** value means a tighter (denser) cluster.
#[must_use]
pub fn density_eta(mesh: Mesh2d, nodes: &[NodeId]) -> Option<f64> {
    let (wx, wy) = virtual_center(mesh, nodes)?;
    let m = nodes.len() as f64;
    let sum: f64 = nodes
        .iter()
        .map(|n| {
            let c: Coord = mesh.coord(*n);
            (c.x as f64 - wx).abs() + (c.y as f64 - wy).abs()
        })
        .sum();
    Some(sum / m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh2d {
        Mesh2d::new(8, 8).unwrap()
    }

    #[test]
    fn center_cluster_hugs_the_center() {
        let m = mesh();
        let p = Placement::generate(m, 5, &PlacementStrategy::CenterCluster, &[]);
        assert_eq!(p.len(), 5);
        let rho = p.distance_rho(m, m.center()).unwrap();
        assert!(rho < 1.5, "rho = {rho}");
        let eta = p.density_eta(m).unwrap();
        assert!(eta <= 1.5, "eta = {eta}");
    }

    #[test]
    fn corner_cluster_is_far_from_center() {
        let m = mesh();
        let p = Placement::generate(m, 5, &PlacementStrategy::CornerCluster, &[]);
        let rho = p.distance_rho(m, m.center()).unwrap();
        assert!(rho > 5.0, "rho = {rho}");
        assert!(p.nodes().contains(&NodeId(0)));
    }

    #[test]
    fn random_placement_is_reproducible_and_spread() {
        let m = mesh();
        let a = Placement::generate(m, 10, &PlacementStrategy::Random { seed: 7 }, &[]);
        let b = Placement::generate(m, 10, &PlacementStrategy::Random { seed: 7 }, &[]);
        assert_eq!(a, b);
        let c = Placement::generate(m, 10, &PlacementStrategy::Random { seed: 8 }, &[]);
        assert_ne!(a, c);
        // Random spread has higher eta than a tight cluster.
        let cluster = Placement::generate(m, 10, &PlacementStrategy::CenterCluster, &[]);
        assert!(a.density_eta(m).unwrap() > cluster.density_eta(m).unwrap());
    }

    #[test]
    fn excluded_nodes_are_never_infected() {
        let m = mesh();
        let manager = m.center();
        for strat in [
            PlacementStrategy::CenterCluster,
            PlacementStrategy::Random { seed: 3 },
            PlacementStrategy::CornerCluster,
        ] {
            let p = Placement::generate(m, 20, &strat, &[manager]);
            assert_eq!(p.len(), 20);
            assert!(!p.nodes().contains(&manager), "{strat:?}");
        }
    }

    #[test]
    fn explicit_placement_filters_and_dedups() {
        let m = mesh();
        let p = Placement::generate(
            m,
            0, // m is ignored for explicit lists
            &PlacementStrategy::Explicit(vec![NodeId(3), NodeId(3), NodeId(99), NodeId(1)]),
            &[NodeId(1)],
        );
        assert_eq!(p.nodes(), &[NodeId(3)]);
    }

    #[test]
    fn definitions_on_hand_example() {
        // HTs at (0,0) and (2,2): ω = (1,1); with manager at (1,1), ρ = 0;
        // η = (2 + 2) / 2 = 2.
        let m = Mesh2d::new(4, 4).unwrap();
        let nodes = vec![m.node(Coord::new(0, 0)), m.node(Coord::new(2, 2))];
        let (wx, wy) = virtual_center(m, &nodes).unwrap();
        assert_eq!((wx, wy), (1.0, 1.0));
        let manager = m.node(Coord::new(1, 1));
        assert_eq!(distance_rho(m, &nodes, manager), Some(0.0));
        assert_eq!(density_eta(m, &nodes), Some(2.0));
    }

    #[test]
    fn empty_placement_metrics_are_none() {
        let m = mesh();
        let p = Placement::generate(m, 0, &PlacementStrategy::CenterCluster, &[]);
        assert!(p.is_empty());
        assert_eq!(p.virtual_center(m), None);
        assert_eq!(p.distance_rho(m, m.center()), None);
        assert_eq!(p.density_eta(m), None);
    }

    #[test]
    fn single_ht_density_is_zero() {
        let m = mesh();
        let p = Placement::generate(m, 1, &PlacementStrategy::CenterCluster, &[]);
        assert_eq!(p.density_eta(m), Some(0.0));
    }
}
