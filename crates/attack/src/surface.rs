//! The attacker's targeting map: per-router *criticality* — the fraction of
//! request sources whose route to the global manager crosses each router.
//!
//! Criticality is the spatial structure behind every placement result in
//! the paper: Fig. 3's manager-location effect (a corner manager stretches
//! routes, raising average criticality), Fig. 4's distribution ordering
//! (center clusters sit on high-criticality routers), and the Eq. 10
//! optimum (pick the criticality maxima). The map also serves defenders:
//! routers above a criticality threshold deserve hardened implementations
//! or post-silicon inspection first.

use htpb_noc::{Mesh2d, NodeId};

/// Per-router criticality for one (mesh, manager) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSurface {
    mesh: Mesh2d,
    manager: NodeId,
    /// `criticality[node]` — fraction of sources routed through the node.
    criticality: Vec<f64>,
}

impl AttackSurface {
    /// Computes the surface under XY routing (one request per non-manager
    /// node, the paper's epoch traffic).
    #[must_use]
    pub fn compute(mesh: Mesh2d, manager: NodeId) -> Self {
        let mut hits = vec![0u32; mesh.nodes() as usize];
        let mut sources = 0u32;
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            sources += 1;
            for node in mesh.xy_path(src, manager) {
                hits[node.0 as usize] += 1;
            }
        }
        AttackSurface {
            mesh,
            manager,
            criticality: hits
                .into_iter()
                .map(|h| {
                    if sources == 0 {
                        0.0
                    } else {
                        f64::from(h) / f64::from(sources)
                    }
                })
                .collect(),
        }
    }

    /// The mesh the surface was computed over.
    #[must_use]
    pub fn mesh(&self) -> Mesh2d {
        self.mesh
    }

    /// The manager node.
    #[must_use]
    pub fn manager(&self) -> NodeId {
        self.manager
    }

    /// Criticality of one router in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    #[must_use]
    pub fn criticality(&self, node: NodeId) -> f64 {
        self.criticality[node.0 as usize]
    }

    /// All routers ranked by criticality, descending (ties by id).
    #[must_use]
    pub fn ranked(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .criticality
            .iter()
            .enumerate()
            .map(|(i, c)| (NodeId(i as u16), *c))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// The `k` most critical routers excluding the manager's own — the
    /// attacker's natural shopping list, and the defender's hardening list.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<NodeId> {
        self.ranked()
            .into_iter()
            .filter(|(n, _)| *n != self.manager)
            .take(k)
            .map(|(n, _)| n)
            .collect()
    }

    /// Mean criticality over all non-manager routers — a scalar measure of
    /// how exposed the whole chip is for this manager placement (higher for
    /// corner managers, cf. Fig. 3).
    #[must_use]
    pub fn mean_exposure(&self) -> f64 {
        let n = self.criticality.len() - 1;
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .criticality
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.manager.0 as usize)
            .map(|(_, c)| *c)
            .sum();
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_router_sees_everything() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let s = AttackSurface::compute(mesh, mesh.center());
        assert!((s.criticality(mesh.center()) - 1.0).abs() < 1e-12);
        assert_eq!(s.ranked()[0].0, mesh.center());
    }

    #[test]
    fn criticality_grows_towards_the_manager() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let s = AttackSurface::compute(mesh, manager);
        // A manager neighbour on the column outranks a corner node.
        let neighbour = mesh.neighbor(manager, htpb_noc::Direction::North).unwrap();
        assert!(s.criticality(neighbour) > s.criticality(NodeId(63)) * 3.0);
    }

    #[test]
    fn top_k_excludes_manager_and_matches_optimizer_instincts() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let s = AttackSurface::compute(mesh, manager);
        let top = s.top_k(4);
        assert_eq!(top.len(), 4);
        assert!(!top.contains(&manager));
        // Under XY routing the manager's own column carries every request's
        // final Y-phase, so the hottest routers all share its column.
        let mx = mesh.coord(manager).x;
        for n in top {
            assert_eq!(mesh.coord(n).x, mx, "{n} not on the manager column");
        }
    }

    #[test]
    fn corner_manager_raises_exposure() {
        // Fig. 3's mechanism, as a closed-form statement: longer routes
        // mean more routers with high criticality.
        let mesh = Mesh2d::new(8, 8).unwrap();
        let center = AttackSurface::compute(mesh, mesh.center()).mean_exposure();
        let corner = AttackSurface::compute(mesh, mesh.corner()).mean_exposure();
        assert!(corner > center * 1.2, "corner {corner} vs center {center}");
    }

    #[test]
    fn single_node_mesh_degenerates_gracefully() {
        let mesh = Mesh2d::new(1, 1).unwrap();
        let s = AttackSurface::compute(mesh, NodeId(0));
        assert_eq!(s.criticality(NodeId(0)), 0.0);
        assert_eq!(s.mean_exposure(), 0.0);
        assert!(s.top_k(3).is_empty());
    }
}
