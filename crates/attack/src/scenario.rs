//! The benchmark mixes of Table III — the attacker/victim combinations the
//! paper evaluates in Section V-C.

use htpb_manycore::{AppRole, Benchmark, Workload};
use htpb_noc::Mesh2d;

/// One row of Table III: a set of attacker applications and a set of
/// victim applications sharing the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mix {
    /// Attackers: barnes, canneal. Victims: blackscholes, raytrace.
    Mix1,
    /// Attackers: freqmine, swaptions. Victims: raytrace, vips.
    Mix2,
    /// Attacker: canneal. Victims: barnes, vips, dedup.
    Mix3,
    /// Attackers: barnes, streamcluster, freqmine. Victim: raytrace.
    Mix4,
}

impl Mix {
    /// All four mixes of Table III.
    pub const ALL: [Mix; 4] = [Mix::Mix1, Mix::Mix2, Mix::Mix3, Mix::Mix4];

    /// The mix's name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mix::Mix1 => "mix-1",
            Mix::Mix2 => "mix-2",
            Mix::Mix3 => "mix-3",
            Mix::Mix4 => "mix-4",
        }
    }

    /// Attacker applications (the set Δ).
    #[must_use]
    pub fn attackers(self) -> &'static [Benchmark] {
        match self {
            Mix::Mix1 => &[Benchmark::Barnes, Benchmark::Canneal],
            Mix::Mix2 => &[Benchmark::Freqmine, Benchmark::Swaptions],
            Mix::Mix3 => &[Benchmark::Canneal],
            Mix::Mix4 => &[
                Benchmark::Barnes,
                Benchmark::Streamcluster,
                Benchmark::Freqmine,
            ],
        }
    }

    /// Victim applications (the set Γ).
    #[must_use]
    pub fn victims(self) -> &'static [Benchmark] {
        match self {
            Mix::Mix1 => &[Benchmark::Blackscholes, Benchmark::Raytrace],
            Mix::Mix2 => &[Benchmark::Raytrace, Benchmark::Vips],
            Mix::Mix3 => &[Benchmark::Barnes, Benchmark::Vips, Benchmark::Dedup],
            Mix::Mix4 => &[Benchmark::Raytrace],
        }
    }

    /// Total number of applications in the mix.
    #[must_use]
    pub fn app_count(self) -> usize {
        self.attackers().len() + self.victims().len()
    }

    /// Builds the workload with an explicit per-application thread count.
    /// Attackers are added first (so they get the lowest [`htpb_manycore::AppId`]s),
    /// matching the column order of Table III.
    #[must_use]
    pub fn workload(self, threads_per_app: usize) -> Workload {
        let mut w = Workload::new();
        for b in self.attackers() {
            w = w.app(*b, threads_per_app, AppRole::Malicious);
        }
        for b in self.victims() {
            w = w.app(*b, threads_per_app, AppRole::Legitimate);
        }
        w
    }

    /// Builds the workload sized for `mesh`: the paper runs 64 threads per
    /// application on a 256-core chip; since one tile hosts the global
    /// manager, thread counts are capped at `(nodes − 1) / apps` (e.g. 63
    /// for the four-application mixes on 256 cores).
    #[must_use]
    pub fn workload_for_mesh(self, mesh: Mesh2d) -> Workload {
        let per_app = ((mesh.nodes() as usize - 1) / self.app_count()).min(64);
        self.workload(per_app)
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_contents() {
        assert_eq!(Mix::Mix1.attackers().len(), 2);
        assert_eq!(Mix::Mix1.victims().len(), 2);
        assert_eq!(Mix::Mix2.attackers().len(), 2);
        assert_eq!(Mix::Mix3.attackers().len(), 1);
        assert_eq!(Mix::Mix3.victims().len(), 3);
        assert_eq!(Mix::Mix4.attackers().len(), 3);
        assert_eq!(Mix::Mix4.victims().len(), 1);
        assert!(Mix::Mix4.attackers().contains(&Benchmark::Streamcluster));
        assert_eq!(Mix::Mix4.victims(), &[Benchmark::Raytrace]);
    }

    #[test]
    fn workload_roles_and_order() {
        let w = Mix::Mix4.workload(8);
        let apps = w.apps();
        assert_eq!(apps.len(), 4);
        assert!(apps[..3].iter().all(|a| a.is_malicious()));
        assert!(!apps[3].is_malicious());
        assert_eq!(w.total_threads(), 32);
    }

    #[test]
    fn workload_for_mesh_fits() {
        let mesh = Mesh2d::with_nodes(256).unwrap();
        for mix in Mix::ALL {
            let w = mix.workload_for_mesh(mesh);
            assert!(w.total_threads() <= 255, "{mix} overflows");
            // Uses most of the chip, like the paper's 64-thread apps.
            assert!(w.total_threads() >= 192, "{mix} underfills");
        }
    }

    #[test]
    fn names_match_figures() {
        let names: Vec<&str> = Mix::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["mix-1", "mix-2", "mix-3", "mix-4"]);
    }
}
