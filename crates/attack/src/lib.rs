//! Attack modelling for the power-budget hardware-Trojan study: the
//! quantitative layer of Sections IV–V of the SOCC 2018 paper.
//!
//! Provides:
//! - [`metrics`]: Definitions 1–5 — application performance θ, performance
//!   change Θ, attack effect Q(Δ, Γ), and power-budget sensitivity φ/Φ;
//! - [`placement`]: Trojan placement strategies and Definitions 6–8 — the
//!   HT virtual center ω, its distance ρ to the global manager, and the HT
//!   density η;
//! - [`analytic`]: a closed-form infection-rate estimator over XY routes,
//!   cross-validated against the cycle-accurate simulator and fast enough
//!   to sit in the optimizer's inner loop;
//! - [`model`]: the linear attack-effect regression of Eq. 9, with an
//!   ordinary-least-squares fitter and R² reporting;
//! - [`optimize`]: the attack-effect maximisation problem of Eqs. 10–11,
//!   solved by enumeration over placement families as the paper suggests;
//! - [`scenario`]: the benchmark mixes of Table III.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod linalg;
pub mod metrics;
pub mod model;
pub mod optimize;
pub mod placement;
pub mod scenario;
pub mod surface;

pub use analytic::analytic_infection_rate;
pub use metrics::{attack_effect, performance_change, sensitivity_phi, AttackOutcome};
pub use model::{AttackModel, AttackSample, LinearModel};
pub use optimize::{PlacementCandidate, PlacementOptimizer};
pub use placement::{density_eta, distance_rho, virtual_center, Placement, PlacementStrategy};
pub use scenario::Mix;
pub use surface::AttackSurface;
