//! Closed-form infection-rate estimation.
//!
//! Under deterministic XY routing, whether a power request from node `s` is
//! tampered with is a pure path property: the request is infected iff some
//! router on the XY route `s → manager` hosts an active Trojan. The
//! infection rate over one epoch (every worker sends one request) is then
//! the fraction of sources whose route intersects the Trojan set.
//!
//! This estimator exactly predicts the cycle-accurate simulator for XY
//! routing (validated by integration tests) and is cheap enough —
//! `O(nodes · diameter)` — to drive the placement optimizer's inner loop
//! over thousands of candidate placements.

use htpb_noc::{FnvHashSet, Mesh2d, NodeId};

/// Fraction of nodes whose XY route to `manager` passes through at least
/// one node of `trojans` (the source and destination routers inspect
/// packets too, matching the simulator's once-per-hop inspection).
///
/// `attacker` — if given — is excluded from the source population: the
/// Trojan's comparator-3 never modifies the attacker agent's own requests,
/// so they cannot be infected.
#[must_use]
pub fn analytic_infection_rate(
    mesh: Mesh2d,
    manager: NodeId,
    trojans: &[NodeId],
    attacker: Option<NodeId>,
) -> f64 {
    let set: FnvHashSet<NodeId> = trojans.iter().copied().collect();
    if set.is_empty() {
        return 0.0;
    }
    let mut sources = 0u32;
    let mut infected = 0u32;
    for src in mesh.iter_nodes() {
        if src == manager || Some(src) == attacker {
            continue;
        }
        sources += 1;
        if mesh.xy_path(src, manager).iter().any(|n| set.contains(n)) {
            infected += 1;
        }
    }
    if sources == 0 {
        0.0
    } else {
        f64::from(infected) / f64::from(sources)
    }
}

/// Like [`analytic_infection_rate`] but over an explicit source population
/// (e.g. only the cores of victim applications).
#[must_use]
pub fn analytic_infection_rate_for_sources(
    mesh: Mesh2d,
    manager: NodeId,
    trojans: &[NodeId],
    sources: &[NodeId],
) -> f64 {
    let set: FnvHashSet<NodeId> = trojans.iter().copied().collect();
    if set.is_empty() || sources.is_empty() {
        return 0.0;
    }
    let infected = sources
        .iter()
        .filter(|s| mesh.xy_path(**s, manager).iter().any(|n| set.contains(n)))
        .count();
    infected as f64 / sources.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trojans_no_infection() {
        let m = Mesh2d::new(8, 8).unwrap();
        assert_eq!(analytic_infection_rate(m, m.center(), &[], None), 0.0);
    }

    #[test]
    fn trojan_on_manager_router_infects_everyone() {
        // Every XY path ends at the manager's own router, so a Trojan there
        // sees every request.
        let m = Mesh2d::new(8, 8).unwrap();
        let manager = m.center();
        let rate = analytic_infection_rate(m, manager, &[manager], None);
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_offpath_trojan_infects_subset() {
        let m = Mesh2d::new(8, 8).unwrap();
        let manager = NodeId(0);
        // A Trojan in the far corner only catches requests from that corner.
        let rate = analytic_infection_rate(m, manager, &[NodeId(63)], None);
        assert!(rate > 0.0 && rate < 0.1, "rate = {rate}");
    }

    #[test]
    fn column_wall_catches_all_crossing_traffic() {
        // XY routes go along the source row first, then the destination
        // column. A full wall on the manager's column intercepts everything
        // except same-column sources below the wall... here the whole
        // column is infected, so everything is caught.
        let m = Mesh2d::new(4, 4).unwrap();
        let manager = NodeId(5); // (1,1)
        let wall: Vec<NodeId> = (0..4).map(|y| m.node(htpb_noc::Coord::new(1, y))).collect();
        let rate = analytic_infection_rate(m, manager, &wall, None);
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attacker_is_excluded_from_population() {
        let m = Mesh2d::new(4, 4).unwrap();
        let manager = NodeId(0);
        let all = analytic_infection_rate(m, manager, &[manager], None);
        let minus_attacker = analytic_infection_rate(m, manager, &[manager], Some(NodeId(7)));
        // Both are 1.0 (population shrinks but all remaining infected).
        assert_eq!(all, 1.0);
        assert_eq!(minus_attacker, 1.0);
        // With a partial placement, excluding an infected attacker lowers
        // the numerator and denominator together.
        let partial = analytic_infection_rate(m, manager, &[NodeId(1)], None);
        assert!(partial > 0.0 && partial < 1.0);
    }

    #[test]
    fn explicit_sources_population() {
        let m = Mesh2d::new(4, 4).unwrap();
        let manager = NodeId(0);
        // Sources in the same row as a Trojan at node 2 (row 0).
        let rate =
            analytic_infection_rate_for_sources(m, manager, &[NodeId(2)], &[NodeId(3), NodeId(15)]);
        // Node 3's XY path 3->2->1->0 crosses node 2: infected. Node 15's
        // path goes along row 3 to column 0 then up: clean.
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn more_trojans_never_reduce_infection() {
        let m = Mesh2d::new(8, 8).unwrap();
        let manager = m.center();
        let mut prev = 0.0;
        let mut nodes = Vec::new();
        for i in 0..20u16 {
            nodes.push(NodeId(i * 3));
            let rate = analytic_infection_rate(m, manager, &nodes, None);
            assert!(rate >= prev - 1e-12);
            prev = rate;
        }
    }
}
