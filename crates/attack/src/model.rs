//! The linear attack-effect model of Eq. 9:
//!
//! `Q(Δ, Γ) ≈ a₁ρ + a₂η + a₃m + Σ_j b_j Φ_{γj} + Σ_k c_k Φ_{δk} + a₀`
//!
//! Because mixes differ in their victim/attacker counts, the per-application
//! sensitivity terms are aggregated per side (`ΣΦ_victims`, `ΣΦ_attackers`)
//! when fitting across mixes — equivalent to tying the `b_j` (and `c_k`)
//! coefficients, which is the only way a single linear model spans
//! variable-cardinality mixes.

use crate::linalg::{least_squares, r_squared};

/// A generic ordinary-least-squares linear model over fixed-length feature
/// vectors (first weight is the intercept if callers put a constant 1
/// column first — [`AttackModel`] does).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    r2: f64,
}

impl LinearModel {
    /// Fits `y ≈ X w` by least squares. Returns `None` on degenerate input
    /// (empty, ragged rows, or singular normal equations).
    #[must_use]
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Option<Self> {
        let weights = least_squares(x, y)?;
        let yhat: Vec<f64> = x.iter().map(|row| dot(&weights, row)).collect();
        let r2 = r_squared(y, &yhat);
        Some(LinearModel { weights, r2 })
    }

    /// The fitted weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Coefficient of determination on the training data.
    #[must_use]
    pub fn r2(&self) -> f64 {
        self.r2
    }

    /// Predicts one sample.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different length than the training rows.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "feature arity");
        dot(&self.weights, features)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// One observation for the attack-effect regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSample {
    /// Definition 7: distance between the manager and the HT virtual center.
    pub rho: f64,
    /// Definition 8: HT density (mean spread around the virtual center).
    pub eta: f64,
    /// Number of Trojans.
    pub m: f64,
    /// Σ of victim applications' power-budget sensitivities Φ.
    pub phi_victims: f64,
    /// Σ of attacker applications' power-budget sensitivities Φ.
    pub phi_attackers: f64,
    /// The measured attack effect Q(Δ, Γ).
    pub q: f64,
}

impl AttackSample {
    fn features(&self) -> Vec<f64> {
        vec![
            1.0,
            self.rho,
            self.eta,
            self.m,
            self.phi_victims,
            self.phi_attackers,
        ]
    }
}

/// The fitted Eq.-9 model.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackModel {
    inner: LinearModel,
}

impl AttackModel {
    /// Fits Eq. 9 on a set of measured samples. Needs at least as many
    /// samples as coefficients (six); returns `None` otherwise or on a
    /// degenerate design.
    #[must_use]
    pub fn fit(samples: &[AttackSample]) -> Option<Self> {
        if samples.len() < 6 {
            return None;
        }
        let x: Vec<Vec<f64>> = samples.iter().map(AttackSample::features).collect();
        let y: Vec<f64> = samples.iter().map(|s| s.q).collect();
        Some(AttackModel {
            inner: LinearModel::fit(&x, &y)?,
        })
    }

    /// Intercept a₀.
    #[must_use]
    pub fn a0(&self) -> f64 {
        self.inner.weights()[0]
    }

    /// Coefficient a₁ on ρ (expected negative: a far virtual center weakens
    /// the attack).
    #[must_use]
    pub fn a1_rho(&self) -> f64 {
        self.inner.weights()[1]
    }

    /// Coefficient a₂ on η (expected negative: a looser cluster weakens the
    /// attack near the manager).
    #[must_use]
    pub fn a2_eta(&self) -> f64 {
        self.inner.weights()[2]
    }

    /// Coefficient a₃ on m (expected positive: more Trojans, stronger
    /// attack).
    #[must_use]
    pub fn a3_m(&self) -> f64 {
        self.inner.weights()[3]
    }

    /// Tied victim-sensitivity coefficient (the `b_j` of Eq. 9).
    #[must_use]
    pub fn b_phi_victims(&self) -> f64 {
        self.inner.weights()[4]
    }

    /// Tied attacker-sensitivity coefficient (the `c_k` of Eq. 9).
    #[must_use]
    pub fn c_phi_attackers(&self) -> f64 {
        self.inner.weights()[5]
    }

    /// Training R².
    #[must_use]
    pub fn r2(&self) -> f64 {
        self.inner.r2()
    }

    /// Predicts Q for a prospective configuration.
    #[must_use]
    pub fn predict(&self, sample: &AttackSample) -> f64 {
        self.inner.predict(&sample.features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(rho: f64, eta: f64, m: f64, pv: f64, pa: f64) -> AttackSample {
        // Ground truth: Q = 2 - 0.2 rho - 0.1 eta + 0.05 m + 0.3 pv + 0.1 pa
        AttackSample {
            rho,
            eta,
            m,
            phi_victims: pv,
            phi_attackers: pa,
            q: 2.0 - 0.2 * rho - 0.1 * eta + 0.05 * m + 0.3 * pv + 0.1 * pa,
        }
    }

    fn grid() -> Vec<AttackSample> {
        let mut v = Vec::new();
        for rho in [0.0, 2.0, 5.0] {
            for eta in [0.5, 2.0, 4.0] {
                for m in [4.0, 16.0] {
                    for pv in [1.0, 3.0] {
                        for pa in [1.0, 2.0] {
                            v.push(synth(rho, eta, m, pv, pa));
                        }
                    }
                }
            }
        }
        v
    }

    #[test]
    fn recovers_synthetic_coefficients() {
        let model = AttackModel::fit(&grid()).unwrap();
        assert!((model.a0() - 2.0).abs() < 1e-6);
        assert!((model.a1_rho() + 0.2).abs() < 1e-6);
        assert!((model.a2_eta() + 0.1).abs() < 1e-6);
        assert!((model.a3_m() - 0.05).abs() < 1e-6);
        assert!((model.b_phi_victims() - 0.3).abs() < 1e-6);
        assert!((model.c_phi_attackers() - 0.1).abs() < 1e-6);
        assert!(model.r2() > 0.999999);
    }

    #[test]
    fn prediction_matches_ground_truth() {
        let model = AttackModel::fit(&grid()).unwrap();
        let probe = synth(1.0, 1.0, 8.0, 2.0, 1.5);
        assert!((model.predict(&probe) - probe.q).abs() < 1e-6);
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = grid();
        assert!(AttackModel::fit(&s[..5]).is_none());
    }

    #[test]
    fn linear_model_panics_on_wrong_arity() {
        let m = LinearModel::fit(
            &[vec![1.0, 2.0], vec![1.0, 3.0], vec![1.0, 4.0]],
            &[1.0, 2.0, 3.0],
        )
        .unwrap();
        let result = std::panic::catch_unwind(|| m.predict(&[1.0]));
        assert!(result.is_err());
    }
}
