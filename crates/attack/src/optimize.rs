//! The attack-effect maximisation problem of Eqs. 10–11:
//!
//! `max_{ρ, η, m} Q(Δ, Γ)  subject to  m ≤ M_HT`.
//!
//! Following the paper ("one can exhaustively enumerate all possible values
//! for \[the\] three metrics"), the optimizer enumerates placement families
//! spanning the (ρ, η, m) space — clusters of every spread anchored at
//! every mesh node, plus random scatters — and scores each candidate by the
//! closed-form infection rate of [`crate::analytic`], which is monotonic in
//! the attack effect for a fixed mix (Fig. 5). The best candidate by score
//! (ties broken towards fewer Trojans, then lower ρ) is returned.

use htpb_noc::{Mesh2d, NodeId};

use crate::analytic::analytic_infection_rate;
use crate::placement::{Placement, PlacementStrategy};

/// One evaluated placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementCandidate {
    /// The placement itself.
    pub placement: Placement,
    /// Strategy that produced it (for reporting).
    pub description: String,
    /// Number of Trojans.
    pub m: usize,
    /// Definition 7 distance ρ.
    pub rho: f64,
    /// Definition 8 density η.
    pub eta: f64,
    /// Predicted infection rate (the optimizer's objective).
    pub infection: f64,
}

/// Exhaustive-enumeration placement optimizer (Eqs. 10–11).
#[derive(Debug, Clone)]
pub struct PlacementOptimizer {
    mesh: Mesh2d,
    manager: NodeId,
    max_hts: usize,
    excluded: Vec<NodeId>,
    random_seeds: u64,
}

impl PlacementOptimizer {
    /// Creates an optimizer for a chip with the manager at `manager` and
    /// the constraint `m ≤ max_hts` (the paper's `M_HT`).
    #[must_use]
    pub fn new(mesh: Mesh2d, manager: NodeId, max_hts: usize) -> Self {
        PlacementOptimizer {
            mesh,
            manager,
            max_hts: max_hts.max(1),
            excluded: Vec::new(),
            random_seeds: 8,
        }
    }

    /// Forbids placing Trojans at the given nodes (e.g. nodes under
    /// heightened scrutiny).
    #[must_use]
    pub fn exclude(mut self, nodes: &[NodeId]) -> Self {
        self.excluded.extend_from_slice(nodes);
        self
    }

    /// How many random scatters per `m` to include in the enumeration.
    #[must_use]
    pub fn random_candidates(mut self, seeds: u64) -> Self {
        self.random_seeds = seeds;
        self
    }

    /// Evaluates one explicit placement.
    #[must_use]
    pub fn evaluate(
        &self,
        placement: Placement,
        description: impl Into<String>,
    ) -> PlacementCandidate {
        let infection = analytic_infection_rate(self.mesh, self.manager, placement.nodes(), None);
        let m = placement.len();
        let rho = placement
            .distance_rho(self.mesh, self.manager)
            .unwrap_or(0.0);
        let eta = placement.density_eta(self.mesh).unwrap_or(0.0);
        PlacementCandidate {
            placement,
            description: description.into(),
            m,
            rho,
            eta,
            infection,
        }
    }

    /// Builds the greedy maximum-coverage placement for `m` Trojans: at
    /// each step, implant at the router that intercepts the most
    /// still-uncovered sources. This is the classic (1 − 1/e)-approximation
    /// to the optimal coverage set, and on XY meshes it recovers the true
    /// optimum for small `m` (cover the manager's heavy gates first).
    #[must_use]
    pub fn greedy_cover(&self, m: usize) -> Placement {
        let mesh = self.mesh;
        let manager = self.manager;
        let sources: Vec<NodeId> = mesh.iter_nodes().filter(|n| *n != manager).collect();
        // Inverted index: for each node, the source indices it covers.
        let mut covers: Vec<Vec<usize>> = vec![Vec::new(); mesh.nodes() as usize];
        for (si, src) in sources.iter().enumerate() {
            for node in mesh.xy_path(*src, manager) {
                covers[node.0 as usize].push(si);
            }
        }
        let mut covered = vec![false; sources.len()];
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut best: Option<(usize, NodeId)> = None;
            for node in mesh.iter_nodes() {
                if self.excluded.contains(&node) || chosen.contains(&node) {
                    continue;
                }
                let gain = covers[node.0 as usize]
                    .iter()
                    .filter(|si| !covered[**si])
                    .count();
                let better = match best {
                    None => true,
                    Some((bg, bn)) => gain > bg || (gain == bg && node.0 < bn.0),
                };
                if better {
                    best = Some((gain, node));
                }
            }
            let Some((gain, node)) = best else { break };
            if gain == 0 && !chosen.is_empty() {
                break; // full coverage reached; fewer Trojans suffice
            }
            for si in &covers[node.0 as usize] {
                covered[*si] = true;
            }
            chosen.push(node);
        }
        Placement::generate(
            mesh,
            0,
            &PlacementStrategy::Explicit(chosen),
            &self.excluded,
        )
    }

    /// Enumerates the candidate family for a fixed Trojan count `m`.
    #[must_use]
    pub fn candidates_for(&self, m: usize) -> Vec<PlacementCandidate> {
        let mut out = Vec::new();
        // Greedy maximum coverage: the strongest family for small m.
        out.push(self.evaluate(self.greedy_cover(m), format!("greedy-cover#{m}")));
        // Clusters around every node: spans ρ from 0 to the diameter with
        // minimal η for each anchor.
        for anchor in self.mesh.iter_nodes() {
            let p = Placement::generate(
                self.mesh,
                m,
                &PlacementStrategy::ClusterAround { anchor },
                &self.excluded,
            );
            out.push(self.evaluate(p, format!("cluster@{anchor}")));
        }
        // Random scatters: spans high-η configurations.
        for seed in 0..self.random_seeds {
            let p = Placement::generate(
                self.mesh,
                m,
                &PlacementStrategy::Random { seed },
                &self.excluded,
            );
            out.push(self.evaluate(p, format!("random#{seed}")));
        }
        out
    }

    /// Solves Eqs. 10–11: enumerates all `m ≤ M_HT` (by powers of two plus
    /// the bound itself, since infection is monotone in `m` within a
    /// family) and returns the best candidate.
    #[must_use]
    pub fn optimize(&self) -> PlacementCandidate {
        let mut ms: Vec<usize> = std::iter::successors(Some(1usize), |m| Some(m * 2))
            .take_while(|m| *m < self.max_hts)
            .collect();
        ms.push(self.max_hts);
        let mut best: Option<PlacementCandidate> = None;
        for m in ms {
            for cand in self.candidates_for(m) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        cand.infection > b.infection + 1e-12
                            || ((cand.infection - b.infection).abs() <= 1e-12
                                && (cand.m, cand.rho) < (b.m, b.rho))
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        best.expect("at least one candidate was enumerated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_clusters_near_the_manager() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let opt = PlacementOptimizer::new(mesh, manager, 8).optimize();
        // A cluster containing the manager's router catches everything.
        assert!(
            (opt.infection - 1.0).abs() < 1e-12,
            "infection {}",
            opt.infection
        );
        assert!(opt.rho < 2.0, "rho {}", opt.rho);
    }

    #[test]
    fn optimum_beats_random_baseline() {
        let mesh = Mesh2d::new(16, 16).unwrap();
        let manager = mesh.center();
        let optzr = PlacementOptimizer::new(mesh, manager, 16);
        let opt = optzr.optimize();
        let random = optzr.evaluate(
            Placement::generate(mesh, 16, &PlacementStrategy::Random { seed: 123 }, &[]),
            "random-baseline",
        );
        assert!(
            opt.infection > random.infection,
            "optimal {} vs random {}",
            opt.infection,
            random.infection
        );
    }

    #[test]
    fn exclusion_is_respected_yet_still_effective() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let opt = PlacementOptimizer::new(mesh, manager, 8)
            .exclude(&[manager])
            .optimize();
        assert!(!opt.placement.nodes().contains(&manager));
        // Ringing the manager still catches nearly everything.
        assert!(opt.infection > 0.9, "infection {}", opt.infection);
    }

    #[test]
    fn ties_prefer_fewer_trojans() {
        // On a tiny mesh a single HT on the manager achieves 1.0; the
        // optimizer must not prefer a larger placement with equal score.
        let mesh = Mesh2d::new(4, 4).unwrap();
        let manager = mesh.center();
        let opt = PlacementOptimizer::new(mesh, manager, 8).optimize();
        assert_eq!(opt.infection, 1.0);
        assert_eq!(opt.m, 1);
    }

    #[test]
    fn greedy_cover_picks_the_manager_gates() {
        // With the manager excluded, the best 3-Trojan placement covers the
        // two column gates (N, S) plus one row gate — not three arbitrary
        // neighbours. This is the case a random placement used to win.
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let opt = PlacementOptimizer::new(mesh, manager, 3).exclude(&[manager]);
        let placement = opt.greedy_cover(3);
        let rate = crate::analytic::analytic_infection_rate(mesh, manager, placement.nodes(), None);
        assert!(rate > 0.9, "greedy cover only reached {rate}");
    }

    #[test]
    fn candidates_cover_rho_and_eta_ranges() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let manager = mesh.center();
        let cands = PlacementOptimizer::new(mesh, manager, 8).candidates_for(8);
        let rho_min = cands.iter().map(|c| c.rho).fold(f64::INFINITY, f64::min);
        let rho_max = cands.iter().map(|c| c.rho).fold(0.0, f64::max);
        let eta_max = cands.iter().map(|c| c.eta).fold(0.0, f64::max);
        assert!(rho_min < 1.0);
        assert!(rho_max > 6.0, "rho_max {rho_max}");
        assert!(eta_max > 2.0, "eta_max {eta_max}");
    }
}
