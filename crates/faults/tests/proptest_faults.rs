//! Property tests for the fault layer's zero-overhead contract: a seeded
//! but **empty** `FaultPlan`, installed as a live hook, must leave the
//! network's observable behaviour bit-identical to a build with no hook at
//! all — for any seed, traffic shape and schedule. This is the guard on the
//! `any_faults_at` fast path that also keeps the NoC golden digests valid.

use proptest::prelude::*;

use htpb_faults::FaultPlan;
use htpb_noc::{
    HotspotTraffic, Mesh2d, Network, NetworkConfig, PacketKind, TrafficPattern, UniformTraffic,
};
use htpb_trojan::ActivationSchedule;

/// Runs `cycles` of traffic plus a bounded drain, returning the stats
/// fingerprint (counters, latency histogram) and final cycle.
fn run_fingerprint(
    mut net: Network,
    mut traffic: impl TrafficPattern,
    cycles: u64,
) -> (u64, u64, u64) {
    for cycle in 0..cycles {
        for p in traffic.generate(cycle) {
            let _ = net.inject(p);
        }
        net.step();
    }
    let mut spin = 0u64;
    while !net.is_idle() {
        net.step();
        spin += 1;
        assert!(spin < 1_000_000, "network failed to drain");
    }
    (
        net.stats().fingerprint(),
        net.cycle(),
        net.stats().delivered_packets(),
    )
}

fn arb_schedule() -> impl Strategy<Value = ActivationSchedule> {
    prop_oneof![
        Just(ActivationSchedule::AlwaysOn),
        (0u64..200, 1u64..200)
            .prop_map(|(on, period)| ActivationSchedule::DutyCycle { on, period }),
        (0u64..500, 0u64..500).prop_map(|(start, len)| ActivationSchedule::Window {
            start,
            end: start + len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empty plan ⇒ bit-identical `NetworkStats::fingerprint()` to the
    /// no-hook build, under uniform traffic.
    #[test]
    fn empty_plan_is_invisible_uniform(
        seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        schedule in arb_schedule(),
        w in 2u16..=6,
        h in 2u16..=6,
        rate in 1u32..=60,
    ) {
        let mesh = Mesh2d::new(w, h).expect("valid dims");
        let traffic = || UniformTraffic::new(
            mesh,
            f64::from(rate) / 1_000.0,
            PacketKind::Data,
            traffic_seed,
        );

        let bare = run_fingerprint(Network::new(NetworkConfig::new(mesh)), traffic(), 400);

        let mut hooked_net = Network::new(NetworkConfig::new(mesh));
        hooked_net.set_fault_hook(Box::new(FaultPlan::empty(seed).with_schedule(schedule)));
        let hooked = run_fingerprint(hooked_net, traffic(), 400);

        prop_assert_eq!(bare, hooked);
    }

    /// Same equivalence under hotspot (manager-bound) traffic — the shape
    /// the power-budgeting loop actually produces.
    #[test]
    fn empty_plan_is_invisible_hotspot(
        seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        w in 2u16..=6,
        h in 2u16..=6,
    ) {
        let mesh = Mesh2d::new(w, h).expect("valid dims");
        let traffic = || HotspotTraffic::new(mesh, mesh.center(), 300, 60, traffic_seed);

        let bare = run_fingerprint(Network::new(NetworkConfig::new(mesh)), traffic(), 900);

        let mut hooked_net = Network::new(NetworkConfig::new(mesh));
        hooked_net.set_fault_hook(Box::new(FaultPlan::empty(seed)));
        let hooked = run_fingerprint(hooked_net, traffic(), 900);

        prop_assert_eq!(bare, hooked);
    }

    /// Spec strings round-trip for arbitrary configurations.
    #[test]
    fn spec_roundtrips(
        seed in any::<u64>(),
        link in any::<u32>(),
        link_gran in 1u64..10_000,
        stall in any::<u32>(),
        stall_gran in 1u64..10_000,
        flip in any::<u32>(),
        drop in any::<u32>(),
        schedule in arb_schedule(),
    ) {
        let plan = FaultPlan::new(seed)
            .with_link_down(link, link_gran)
            .with_stalls(stall, stall_gran)
            .with_flips(flip)
            .with_drops(drop)
            .with_schedule(schedule);
        let parsed = FaultPlan::from_spec(&plan.to_spec()).expect("roundtrip");
        prop_assert_eq!(parsed, plan);
    }

    /// A non-empty plan still conserves packets: everything injected is
    /// delivered or counted dropped, and the network fully drains.
    #[test]
    fn faulty_network_conserves_packets(
        seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        drop_ppm in 0u32..=200_000,
        flip_ppm in 0u32..=200_000,
    ) {
        let mesh = Mesh2d::new(4, 4).expect("valid dims");
        let mut net = Network::new(NetworkConfig::new(mesh));
        net.set_fault_hook(Box::new(
            FaultPlan::new(seed).with_drops(drop_ppm).with_flips(flip_ppm),
        ));
        let mut traffic = UniformTraffic::new(mesh, 0.05, PacketKind::Data, traffic_seed);
        for cycle in 0..300 {
            for p in traffic.generate(cycle) {
                let _ = net.inject(p);
            }
            net.step();
        }
        prop_assert!(net.run_until_idle(1_000_000), "faulty network failed to drain");
        let stats = net.stats();
        prop_assert_eq!(
            stats.delivered_packets() + stats.dropped_packets(),
            stats.injected_packets(),
            "conservation violated under faults"
        );
    }
}
