use std::fmt;
use std::sync::{Arc, Mutex};

use htpb_noc::{Direction, FaultAction, FaultHook, NodeId, Packet};
use htpb_trojan::ActivationSchedule;

/// Rates are expressed in parts per million: `1_000_000` = always,
/// `10_000` = 1%, `0` = never.
pub const PPM_SCALE: u64 = 1_000_000;

/// Hash domains, one per fault mode, so decisions in different modes are
/// statistically independent even for the same entity and cycle.
const DOMAIN_LINK: u64 = 0x11;
const DOMAIN_STALL: u64 = 0x22;
const DOMAIN_DROP: u64 = 0x33;
const DOMAIN_FLIP: u64 = 0x44;

/// Ground-truth tallies of faults applied by a [`FaultPlan`] during a run.
///
/// These count *effective* faults — decisions the pipeline actually asked
/// about and acted on — not scheduled ones: a link declared down while no
/// flit wanted it never shows up here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Switch-arbitration attempts refused because the output link was down.
    pub link_denials: u64,
    /// (router, cycle) pairs in which the router was stalled while holding
    /// flits.
    pub stall_cycles: u64,
    /// Payload words hit by a single-bit flip.
    pub bit_flips: u64,
    /// Whole packets sunk by a drop fault.
    pub packet_drops: u64,
}

impl FaultCounters {
    /// Total fault events of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.link_denials + self.stall_cycles + self.bit_flips + self.packet_drops
    }
}

/// A handle onto a [`FaultPlan`]'s live counters.
///
/// [`htpb_noc::Network::set_fault_hook`] takes the plan by `Box<dyn
/// FaultHook>`, which cannot be downcast back; grab a handle with
/// [`FaultPlan::counter_handle`] *before* installing the plan and read the
/// tallies any time, including mid-run.
#[derive(Debug, Clone)]
pub struct FaultCounterHandle(Arc<Mutex<FaultCounters>>);

impl FaultCounterHandle {
    /// Snapshot of the counters at this moment.
    ///
    /// # Panics
    ///
    /// Panics if a previous reader panicked while holding the lock (cannot
    /// happen from this crate's code, which never panics under the lock).
    #[must_use]
    pub fn get(&self) -> FaultCounters {
        *self.0.lock().expect("fault counter lock poisoned")
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// Each fault mode fires with a configured probability (in parts per
/// million), decided by hashing `(seed, mode, entity, time)` — never by a
/// stateful RNG — so the plan is a pure function: replaying the same plan
/// against the same traffic reproduces the same faults regardless of how
/// many times or in what order the simulator consults it.
///
/// * **Link outages** and **router stalls** are decided per *window* of
///   `granularity` cycles, modelling sustained outages rather than
///   single-cycle glitches.
/// * **Bit flips** and **packet drops** are decided per packet per router,
///   at the inspection point of the pipeline.
///
/// The plan is gated by an [`ActivationSchedule`] (default: always on), and
/// serializes to a compact `key=value` spec string via
/// [`FaultPlan::to_spec`] / [`FaultPlan::from_spec`] so harness jobs can
/// carry plans in their cache keys and journals.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    schedule: ActivationSchedule,
    link_down_ppm: u32,
    link_granularity: u64,
    stall_ppm: u32,
    stall_granularity: u64,
    flip_ppm: u32,
    drop_ppm: u32,
    /// Shared with any [`FaultCounterHandle`]s; a [`FaultPlan::clone`]
    /// shares the same tallies.
    counters: Arc<Mutex<FaultCounters>>,
}

/// Configuration equality only — two plans are equal when they would inject
/// the same faults, regardless of how many they already have.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.schedule == other.schedule
            && self.link_down_ppm == other.link_down_ppm
            && self.link_granularity == other.link_granularity
            && self.stall_ppm == other.stall_ppm
            && self.stall_granularity == other.stall_granularity
            && self.flip_ppm == other.flip_ppm
            && self.drop_ppm == other.drop_ppm
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// A plan with every fault rate at zero (inert until configured).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            schedule: ActivationSchedule::AlwaysOn,
            link_down_ppm: 0,
            link_granularity: 200,
            stall_ppm: 0,
            stall_granularity: 50,
            flip_ppm: 0,
            drop_ppm: 0,
            counters: Arc::new(Mutex::new(FaultCounters::default())),
        }
    }

    /// An explicitly empty plan: whatever the seed, it injects nothing and
    /// its per-cycle gate always reports "no faults".
    #[must_use]
    pub fn empty(seed: u64) -> Self {
        FaultPlan::new(seed)
    }

    /// Gates all fault modes with `schedule` (default: always on).
    #[must_use]
    pub fn with_schedule(mut self, schedule: ActivationSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Takes each link down with probability `ppm`/million per window of
    /// `granularity` cycles.
    #[must_use]
    pub fn with_link_down(mut self, ppm: u32, granularity: u64) -> Self {
        self.link_down_ppm = ppm;
        self.link_granularity = granularity.max(1);
        self
    }

    /// Stalls each router with probability `ppm`/million per window of
    /// `granularity` cycles.
    #[must_use]
    pub fn with_stalls(mut self, ppm: u32, granularity: u64) -> Self {
        self.stall_ppm = ppm;
        self.stall_granularity = granularity.max(1);
        self
    }

    /// Flips one payload bit in `ppm`/million of per-router packet
    /// inspections.
    #[must_use]
    pub fn with_flips(mut self, ppm: u32) -> Self {
        self.flip_ppm = ppm;
        self
    }

    /// Drops `ppm`/million of packets at each router they transit.
    #[must_use]
    pub fn with_drops(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// The seed all fault decisions derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule gating all fault modes.
    #[must_use]
    pub fn schedule(&self) -> ActivationSchedule {
        self.schedule
    }

    /// Whether every fault rate is zero (the plan can never fire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.link_down_ppm == 0 && self.stall_ppm == 0 && self.flip_ppm == 0 && self.drop_ppm == 0
    }

    /// Tallies of the faults applied so far.
    ///
    /// # Panics
    ///
    /// See [`FaultCounterHandle::get`].
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        *self.counters.lock().expect("fault counter lock poisoned")
    }

    /// A handle onto the live counters that survives installing the plan
    /// into a network as a boxed hook.
    #[must_use]
    pub fn counter_handle(&self) -> FaultCounterHandle {
        FaultCounterHandle(Arc::clone(&self.counters))
    }

    /// A copy of this plan (same seed, schedule and rates — so the same
    /// fault decisions) with its own zeroed counters, detached from this
    /// plan's. `clone()` shares the counter cell; use this when running the
    /// same plan in several networks whose tallies must stay separate.
    #[must_use]
    pub fn with_fresh_counters(&self) -> FaultPlan {
        let mut plan = self.clone();
        plan.counters = Arc::new(Mutex::new(FaultCounters::default()));
        plan
    }

    /// Resets the applied-fault tallies (the plan itself is stateless).
    ///
    /// # Panics
    ///
    /// See [`FaultCounterHandle::get`].
    pub fn reset_counters(&mut self) {
        *self.counters.lock().expect("fault counter lock poisoned") = FaultCounters::default();
    }

    fn tally(&self, bump: impl FnOnce(&mut FaultCounters)) {
        bump(&mut self.counters.lock().expect("fault counter lock poisoned"));
    }

    /// Serializes the plan (configuration, not counters) to a compact,
    /// order-stable spec string, e.g.
    /// `seed=0xfa017;sched=duty:30/100;link=500@200;stall=100@50;flip=0;drop=10000`.
    #[must_use]
    pub fn to_spec(&self) -> String {
        let sched = match self.schedule {
            ActivationSchedule::AlwaysOn => "always".to_string(),
            ActivationSchedule::DutyCycle { on, period } => format!("duty:{on}/{period}"),
            ActivationSchedule::Window { start, end } => format!("window:{start}..{end}"),
        };
        format!(
            "seed={:#x};sched={};link={}@{};stall={}@{};flip={};drop={}",
            self.seed,
            sched,
            self.link_down_ppm,
            self.link_granularity,
            self.stall_ppm,
            self.stall_granularity,
            self.flip_ppm,
            self.drop_ppm,
        )
    }

    /// Parses a spec string produced by [`FaultPlan::to_spec`]. Fields may
    /// appear in any order; missing fields keep their defaults.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on unknown keys or malformed values.
    pub fn from_spec(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::new(0);
        for field in spec.split(';').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| FaultSpecError::Malformed(field.to_string()))?;
            match key {
                "seed" => plan.seed = parse_u64(value)?,
                "sched" => plan.schedule = parse_schedule(value)?,
                "link" => (plan.link_down_ppm, plan.link_granularity) = parse_rate(value)?,
                "stall" => (plan.stall_ppm, plan.stall_granularity) = parse_rate(value)?,
                "flip" => plan.flip_ppm = parse_ppm(value)?,
                "drop" => plan.drop_ppm = parse_ppm(value)?,
                other => return Err(FaultSpecError::UnknownKey(other.to_string())),
            }
        }
        Ok(plan)
    }

    /// One decision: hash `(seed, domain, a, b)` and compare against `ppm`.
    /// Returns the hash for callers that need extra bits (e.g. which bit to
    /// flip), or `None` when the fault does not fire.
    fn decide(&self, domain: u64, a: u64, b: u64, ppm: u32) -> Option<u64> {
        if ppm == 0 {
            return None;
        }
        let mut x = self
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= a.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= b.wrapping_mul(0x94D0_49BB_1331_11EB);
        // splitmix64 finalizer: full avalanche so per-mille thresholds are
        // unbiased across entities and windows.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % PPM_SCALE < u64::from(ppm)).then_some(x)
    }

    /// Identity of a packet for fault decisions: source, destination and
    /// kind — deliberately *not* the payload, so a flip at one router does
    /// not perturb decisions at later routers.
    fn packet_entity(packet: &Packet) -> u64 {
        (u64::from(packet.src().0) << 32)
            | (u64::from(packet.dst().0) << 16)
            | u64::from(packet.kind().to_type_word())
    }
}

impl FaultHook for FaultPlan {
    fn any_faults_at(&mut self, cycle: u64) -> bool {
        !self.is_empty() && self.schedule.active_at(cycle)
    }

    fn link_down(&mut self, node: NodeId, dir: Direction, cycle: u64) -> bool {
        let entity = u64::from(node.0) * 4 + dir.index() as u64;
        let window = cycle / self.link_granularity;
        let down = self
            .decide(DOMAIN_LINK, entity, window, self.link_down_ppm)
            .is_some();
        if down {
            self.tally(|c| c.link_denials += 1);
        }
        down
    }

    fn router_stalled(&mut self, node: NodeId, cycle: u64) -> bool {
        let window = cycle / self.stall_granularity;
        let stalled = self
            .decide(DOMAIN_STALL, u64::from(node.0), window, self.stall_ppm)
            .is_some();
        if stalled {
            self.tally(|c| c.stall_cycles += 1);
        }
        stalled
    }

    fn packet_fault(&mut self, node: NodeId, cycle: u64, packet: &Packet) -> FaultAction {
        let entity = Self::packet_entity(packet) ^ (u64::from(node.0) << 48);
        if self
            .decide(DOMAIN_DROP, entity, cycle, self.drop_ppm)
            .is_some()
        {
            self.tally(|c| c.packet_drops += 1);
            return FaultAction::drop_packet();
        }
        if let Some(hash) = self.decide(DOMAIN_FLIP, entity, cycle, self.flip_ppm) {
            self.tally(|c| c.bit_flips += 1);
            // The flipped bit position comes from untouched high hash bits.
            return FaultAction::flip(1 << ((hash >> 32) % 32));
        }
        FaultAction::none()
    }
}

/// Why a fault-plan spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A field without a `key=value` shape.
    Malformed(String),
    /// A key this version does not know.
    UnknownKey(String),
    /// A value that does not parse as the expected number or schedule.
    BadValue(String),
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::Malformed(field) => write!(f, "malformed fault spec field {field:?}"),
            FaultSpecError::UnknownKey(key) => write!(f, "unknown fault spec key {key:?}"),
            FaultSpecError::BadValue(value) => write!(f, "bad fault spec value {value:?}"),
        }
    }
}

impl std::error::Error for FaultSpecError {}

fn parse_u64(value: &str) -> Result<u64, FaultSpecError> {
    let parsed = if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse()
    };
    parsed.map_err(|_| FaultSpecError::BadValue(value.to_string()))
}

fn parse_ppm(value: &str) -> Result<u32, FaultSpecError> {
    value
        .parse()
        .map_err(|_| FaultSpecError::BadValue(value.to_string()))
}

fn parse_rate(value: &str) -> Result<(u32, u64), FaultSpecError> {
    let (ppm, granularity) = value
        .split_once('@')
        .ok_or_else(|| FaultSpecError::BadValue(value.to_string()))?;
    Ok((parse_ppm(ppm)?, parse_u64(granularity)?.max(1)))
}

fn parse_schedule(value: &str) -> Result<ActivationSchedule, FaultSpecError> {
    if value == "always" {
        return Ok(ActivationSchedule::AlwaysOn);
    }
    if let Some(rest) = value.strip_prefix("duty:") {
        let (on, period) = rest
            .split_once('/')
            .ok_or_else(|| FaultSpecError::BadValue(value.to_string()))?;
        return Ok(ActivationSchedule::DutyCycle {
            on: parse_u64(on)?,
            period: parse_u64(period)?,
        });
    }
    if let Some(rest) = value.strip_prefix("window:") {
        let (start, end) = rest
            .split_once("..")
            .ok_or_else(|| FaultSpecError::BadValue(value.to_string()))?;
        return Ok(ActivationSchedule::Window {
            start: parse_u64(start)?,
            end: parse_u64(end)?,
        });
    }
    Err(FaultSpecError::BadValue(value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_noc::PacketKind;

    fn sample_plans() -> Vec<FaultPlan> {
        vec![
            FaultPlan::empty(0),
            FaultPlan::new(0xFA_017)
                .with_link_down(500, 200)
                .with_stalls(100, 50)
                .with_flips(42)
                .with_drops(10_000),
            FaultPlan::new(u64::MAX).with_schedule(ActivationSchedule::DutyCycle {
                on: 30,
                period: 100,
            }),
            FaultPlan::new(7)
                .with_schedule(ActivationSchedule::Window { start: 10, end: 99 })
                .with_drops(1_000_000),
        ]
    }

    #[test]
    fn spec_roundtrip() {
        for plan in sample_plans() {
            let spec = plan.to_spec();
            let parsed = FaultPlan::from_spec(&spec).expect("roundtrip parse");
            assert_eq!(parsed, plan, "spec {spec}");
        }
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(matches!(
            FaultPlan::from_spec("bogus"),
            Err(FaultSpecError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::from_spec("turbo=9"),
            Err(FaultSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            FaultPlan::from_spec("drop=many"),
            Err(FaultSpecError::BadValue(_))
        ));
        assert!(matches!(
            FaultPlan::from_spec("sched=duty:nope"),
            Err(FaultSpecError::BadValue(_))
        ));
        assert!(matches!(
            FaultPlan::from_spec("link=5"),
            Err(FaultSpecError::BadValue(_))
        ));
    }

    #[test]
    fn empty_plan_never_engages() {
        let mut plan = FaultPlan::empty(0xDEAD_BEEF);
        for cycle in [0u64, 1, 999, u64::MAX] {
            assert!(!plan.any_faults_at(cycle));
        }
        assert!(plan.is_empty());
        assert_eq!(plan.counters(), FaultCounters::default());
    }

    #[test]
    fn decisions_are_deterministic() {
        let build = || {
            FaultPlan::new(123)
                .with_link_down(300_000, 10)
                .with_stalls(300_000, 10)
                .with_drops(300_000)
                .with_flips(300_000)
        };
        let mut a = build();
        let mut b = build();
        let packet = Packet::power_request(NodeId(3), NodeId(9), 1234);
        for cycle in 0..2_000u64 {
            assert_eq!(
                a.link_down(NodeId(5), Direction::East, cycle),
                b.link_down(NodeId(5), Direction::East, cycle)
            );
            assert_eq!(
                a.router_stalled(NodeId(7), cycle),
                b.router_stalled(NodeId(7), cycle)
            );
            assert_eq!(
                a.packet_fault(NodeId(2), cycle, &packet),
                b.packet_fault(NodeId(2), cycle, &packet)
            );
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().total() > 0, "30% rates must fire somewhere");
    }

    #[test]
    fn rates_land_near_target() {
        let mut plan = FaultPlan::new(99).with_drops(100_000); // 10%
        let mut fired = 0u64;
        let trials = 20_000u64;
        for cycle in 0..trials {
            let p = Packet::new(
                NodeId((cycle % 64) as u16),
                NodeId(((cycle * 7) % 64) as u16),
                PacketKind::Data,
                1,
            );
            if !plan.packet_fault(NodeId(0), cycle, &p).is_none() {
                fired += 1;
            }
        }
        let rate = fired as f64 / trials as f64;
        assert!((rate - 0.10).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn schedule_gates_the_plan() {
        let mut plan = FaultPlan::new(1)
            .with_drops(1_000_000)
            .with_schedule(ActivationSchedule::Window { start: 10, end: 20 });
        assert!(!plan.any_faults_at(9));
        assert!(plan.any_faults_at(10));
        assert!(plan.any_faults_at(19));
        assert!(!plan.any_faults_at(20));
    }

    #[test]
    fn outage_windows_are_sustained() {
        // Within one granularity window the decision must not change.
        let mut plan = FaultPlan::new(5).with_link_down(500_000, 100);
        for window in 0..50u64 {
            let first = plan.link_down(NodeId(8), Direction::North, window * 100);
            for offset in 1..100 {
                assert_eq!(
                    plan.link_down(NodeId(8), Direction::North, window * 100 + offset),
                    first,
                    "window {window} offset {offset}"
                );
            }
        }
    }

    #[test]
    fn counters_track_applied_faults() {
        let mut plan = FaultPlan::new(11)
            .with_drops(1_000_000)
            .with_flips(1_000_000);
        let p = Packet::power_request(NodeId(0), NodeId(1), 500);
        let action = plan.packet_fault(NodeId(0), 0, &p);
        assert!(action.drop, "drop wins over flip");
        assert_eq!(plan.counters().packet_drops, 1);
        assert_eq!(plan.counters().bit_flips, 0);
        plan.reset_counters();
        assert_eq!(plan.counters(), FaultCounters::default());
    }

    #[test]
    fn full_drop_plan_sinks_all_traffic() {
        use htpb_noc::{Mesh2d, Network, NetworkConfig};
        let mesh = Mesh2d::new(4, 4).unwrap();
        let plan = FaultPlan::new(3).with_drops(1_000_000);
        let counters = plan.counter_handle();
        let mut net = Network::new(NetworkConfig::new(mesh));
        net.set_fault_hook(Box::new(plan));
        for i in 0..8u16 {
            net.inject(Packet::power_request(NodeId(i), NodeId(15), 100))
                .unwrap();
        }
        assert!(net.run_until_idle(100_000));
        assert_eq!(net.stats().delivered_packets(), 0);
        assert_eq!(net.stats().dropped_packets(), 8);
        // The handle still sees the tallies of the boxed, installed plan.
        assert_eq!(counters.get().packet_drops, 8);
        assert!(net.take_fault_hook().is_some());
    }
}
