//! Deterministic fault injection for the power-budgeting pipeline.
//!
//! The paper's attack model assumes a *perfect* NoC: every `POWER_REQ`
//! either arrives intact or was tampered with by a Trojan. Real silicon is
//! noisier — links go down, routers stall under voltage droop, buffers flip
//! bits, packets are lost — and any claim about detecting the Trojan is only
//! credible against that noisy baseline. This crate provides the noise:
//!
//! * [`FaultPlan`] — a seeded, serializable description of *which* faults
//!   occur *when*, implementing [`htpb_noc::FaultHook`]. Every decision is a
//!   pure hash of `(seed, entity, time)`, so the same plan replays the same
//!   faults bit for bit, independently of call order or platform.
//! * [`FaultCounters`] — ground-truth tallies of the faults actually applied
//!   during a run, read back with [`FaultPlan::counters`] (via
//!   [`htpb_noc::Network::take_fault_hook`]).
//!
//! Fault windows are gated by a [`htpb_trojan::ActivationSchedule`], the
//! same scheduling vocabulary used for Trojan activation, so experiments can
//! align or de-align fault bursts with attack windows.
//!
//! An **empty** plan (all rates zero — [`FaultPlan::empty`]) reports "no
//! faults" from its per-cycle gate, which keeps the simulator's fault path
//! to a single branch and the network bit-identical to a build with no hook
//! installed. That equivalence is locked by this crate's proptest suite and
//! the NoC golden digests.
//!
//! ```
//! use htpb_faults::FaultPlan;
//! use htpb_noc::{Mesh2d, Network, NetworkConfig, NodeId, Packet};
//!
//! let plan = FaultPlan::new(0xFA_017).with_drops(10_000); // 1% of packets
//! let mesh = Mesh2d::new(4, 4).unwrap();
//! let mut net = Network::new(NetworkConfig::new(mesh));
//! net.set_fault_hook(Box::new(plan));
//! net.inject(Packet::power_request(NodeId(0), NodeId(15), 1500)).unwrap();
//! net.run_until_idle(10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;

pub use plan::{FaultCounterHandle, FaultCounters, FaultPlan, FaultSpecError, PPM_SCALE};
